open Ir
open Flow

(* Insert a preheader before the loop header: every edge into the header
   from outside the loop is redirected to a fresh block placed positionally
   just before the header.  Back-edge fall-through into the header (rare,
   after reordering) is firmed up with an explicit jump first. *)
let insert_preheader func (loop : Loops.loop) =
  let header = loop.header in
  let blocks = Func.blocks func in
  let header_label = blocks.(header).Func.label in
  let pre_label = Func.fresh_label func in
  (* Firm up the fall-through of the positional predecessor if it would now
     fall into the preheader incorrectly:
     - if it is in the loop (back-edge fall-through), it must reach the
       header over the preheader: append a jump when the block has no
       terminator, or interpose a jump-only stub when it ends in a
       conditional branch (a block may hold only one transfer);
     - if it is outside, falling into the preheader is exactly right. *)
  let fixed, stub =
    if
      header > 0
      && Func.falls_through blocks.(header - 1)
      && Loops.Int_set.mem (header - 1) loop.body
    then begin
      let pred = blocks.(header - 1) in
      match Func.terminator pred with
      | None ->
        (Some { pred with instrs = pred.instrs @ [ Rtl.Jump header_label ] },
         None)
      | Some _ ->
        (None,
         Some { Func.label = Func.fresh_label func;
                instrs = [ Rtl.Jump header_label ] })
    end
    else (None, None)
  in
  let retarget_block bi (b : Func.block) =
    if Loops.Int_set.mem bi loop.body then b
    else begin
      let instrs =
        List.map
          (Rtl.map_labels (fun l ->
               if Label.equal l header_label then pre_label else l))
          b.instrs
      in
      { b with instrs }
    end
  in
  let out =
    Array.to_list blocks
    |> List.mapi (fun bi b ->
           let b = match fixed with
             | Some fb when bi = header - 1 -> fb
             | _ -> b
           in
           retarget_block bi b)
  in
  let pre = { Func.label = pre_label; instrs = [] } in
  let before, after =
    let rec split i acc = function
      | [] -> (List.rev acc, [])
      | x :: rest when i = header -> (List.rev acc, x :: rest)
      | x :: rest -> split (i + 1) (x :: acc) rest
    in
    split 0 [] out
  in
  let inserted = match stub with Some sb -> [ sb; pre ] | None -> [ pre ] in
  let blocks = Array.of_list (before @ inserted @ after) in
  (Func.with_blocks func blocks, pre_label)

(* Definitions of each register inside the loop: count, and the list of
   (block, instr) sites. *)
let loop_defs func (loop : Loops.loop) =
  (* Only ever queried point-wise, so a mutable table beats rebuilding a
     balanced tree once per definition. *)
  let defs = Hashtbl.create 64 in
  Loops.Int_set.iter
    (fun bi ->
      List.iter
        (fun i ->
          Reg.Set.iter
            (fun r ->
              let sites =
                match Hashtbl.find_opt defs r with
                | Some sites -> sites
                | None -> []
              in
              Hashtbl.replace defs r ((bi, i) :: sites))
            (Rtl.defs i))
        (Func.block func bi).instrs)
    loop.body;
  defs

let loop_has_mem_effects func (loop : Loops.loop) =
  Loops.Int_set.exists
    (fun bi ->
      List.exists
        (fun i ->
          Rtl.writes_mem i || match i with Rtl.Call _ -> true | _ -> false)
        (Func.block func bi).instrs)
    loop.body

(* Hoist invariant instructions of [loop] into its preheader; returns the
   new function and whether anything moved. *)
let hoist_loop func g dom live (loop : Loops.loop) =
  let defs = loop_defs func loop in
  let def_sites r =
    match Hashtbl.find_opt defs r with Some sites -> sites | None -> []
  in
  let def_count r = List.length (def_sites r) in
  let mem_dirty = loop_has_mem_effects func loop in
  let exits = Loops.exit_edges g loop in
  (* Liveness is only consulted by the exit-safety check, and most loops
     have no syntactically hoistable group at all — keep the whole
     dataflow computation unforced until a candidate actually needs it. *)
  let header_live_in = lazy (Liveness.live_in (Lazy.force live) loop.header) in
  (* The preheader runs even when the loop body would not (zero-iteration
     entry), so hoisted instructions must be unable to fault: no division by
     a possibly-zero value, and loads only through always-mapped addresses
     (frame or globals). *)
  let cannot_fault (i : Rtl.instr) =
    let safe_div =
      match i with
      | Rtl.Binop ((Div | Rem), _, _, Imm n) -> n <> 0
      | Rtl.Binop ((Div | Rem), _, _, (Reg _ | Mem _)) -> false
      | _ -> true
    in
    let safe_addr = function
      | Rtl.Based (r, _) -> Reg.equal r Ir.Conv.fp
      | Rtl.Indexed _ -> false
      | Rtl.Abs _ -> true
    in
    let safe_load =
      match i with
      | Rtl.Move (_, Mem (_, a))
      | Rtl.Binop (_, _, Mem (_, a), _)
      | Rtl.Binop (_, _, _, Mem (_, a))
      | Rtl.Unop (_, _, Mem (_, a)) ->
        safe_addr a
      | _ -> true
    in
    safe_div && safe_load
  in
  let basic_ok (i : Rtl.instr) =
    Rtl.is_pure i
    && ((not (Rtl.reads_mem i)) || not mem_dirty)
    && cannot_fault i
    && Reg.Set.for_all (fun r -> def_count r = 0) (Rtl.uses i)
  in
  (* One rule covers replication-duplicated definitions and the plain
     single-definition case alike.  A register [d] is hoistable when every
     definition of [d] in the loop is the same invariant computation — a
     single instruction, or the adjacent two-address pair
     [d := a; d := d op b] — because then [d] holds that one value at
     every point after any definition.  All sites are deleted and one copy
     moves to the preheader.  Safety:
     - [d] is not live into the header, so nothing observes the pre-loop
       value that the preheader now overwrites;
     - at each exit where [d] is live, some deleted site dominated the
       exit, so the original code also had [d] set to this value there. *)
  let single_shape d = function
    | ( Rtl.Binop (_, Lreg d', _, _)
      | Rtl.Unop (_, Lreg d', _)
      | Rtl.Lea (d', _)
      | Rtl.Move (Lreg d', _) ) as i
      when Reg.equal d d' && not (Reg.Set.mem d (Rtl.uses i)) ->
      true
    | _ -> false
  in
  let exit_safe_sites d sites =
    (not (Reg.Set.mem d (Lazy.force header_live_in)))
    && List.for_all
         (fun (u, vout) ->
           List.exists (fun (bd, _) -> Dom.dominates dom bd u) sites
           || not (Reg.Set.mem d (Liveness.live_in (Lazy.force live) vout)))
         exits
  in
  (* The hoistable definition group of [d], if any: [`Single i] when every
     site is the invariant instruction [i]; [`Pair (i1, i2)] when the sites
     are equal counts of the two halves of an invariant two-address pair
     (adjacency of each occurrence is enforced at deletion time; partial
     deletion is still sound since the surviving sites recompute the same
     value). *)
  let group_of d =
    match def_sites d with
    | [] -> None
    | (_, first) :: _ as sites ->
      if
        single_shape d first
        && List.for_all (fun (_, j) -> Rtl.equal_instr j first) sites
        && basic_ok first
        && exit_safe_sites d sites
      then Some (`Single first)
      else begin
        (* Pair: identify the Move half among the sites. *)
        let halves =
          List.filter_map
            (fun (_, j) ->
              match j with
              | Rtl.Move (Lreg d', _) when Reg.equal d d' -> Some (`M j)
              | Rtl.Binop (_, Lreg d', Reg s, _)
                when Reg.equal d d' && Reg.equal d s ->
                Some (`B j)
              | _ -> None)
            sites
        in
        if List.length halves <> List.length sites then None
        else begin
          let moves = List.filter_map (function `M j -> Some j | `B _ -> None) halves in
          let binops = List.filter_map (function `B j -> Some j | `M _ -> None) halves in
          match moves, binops with
          | m :: _, b :: _
            when List.length moves = List.length binops
                 && List.for_all (fun j -> Rtl.equal_instr j m) moves
                 && List.for_all (fun j -> Rtl.equal_instr j b) binops ->
            let operand_inv o =
              Reg.Set.for_all (fun r -> def_count r = 0) (Rtl.operand_regs o)
            in
            let pair_ok =
              (match m, b with
              | Rtl.Move (_, src), Rtl.Binop (_, _, _, y) ->
                operand_inv src && operand_inv y
              | _ -> false)
              && Rtl.is_pure m && Rtl.is_pure b
              && ((not (Rtl.reads_mem m || Rtl.reads_mem b)) || not mem_dirty)
              && cannot_fault m && cannot_fault b
              && exit_safe_sites d sites
            in
            if pair_ok then Some (`Pair (m, b)) else None
          | _ -> None
        end
      end
  in
  let group_cache = Hashtbl.create 16 in
  let group_of d =
    match Hashtbl.find_opt group_cache d with
    | Some g -> g
    | None ->
      let g = group_of d in
      Hashtbl.add group_cache d g;
      g
  in
  let dest_of = function
    | Rtl.Binop (_, Rtl.Lreg d, _, _)
    | Rtl.Unop (_, Rtl.Lreg d, _)
    | Rtl.Lea (d, _)
    | Rtl.Move (Rtl.Lreg d, _) ->
      Some d
    | _ -> None
  in
  (* Collect candidates (they may enable one another; caller iterates). *)
  let hoisted = ref [] in
  let already_hoisted i =
    List.exists (fun j -> Rtl.equal_instr j i) !hoisted
  in
  let blocks = Array.copy (Func.blocks func) in
  Loops.Int_set.iter
    (fun bi ->
      let b = blocks.(bi) in
      let rec scan acc = function
        | i1 :: i2 :: rest
          when (match dest_of i1 with
               | Some d -> (
                 match group_of d with
                 | Some (`Pair (m, b)) ->
                   Rtl.equal_instr i1 m && Rtl.equal_instr i2 b
                 | Some (`Single _) | None -> false)
               | None -> false) ->
          if not (already_hoisted i2) then hoisted := i2 :: i1 :: !hoisted;
          scan acc rest
        | i :: rest
          when (match dest_of i with
               | Some d -> (
                 match group_of d with
                 | Some (`Single j) -> Rtl.equal_instr i j
                 | Some (`Pair _) | None -> false)
               | None -> false) ->
          if not (already_hoisted i) then hoisted := i :: !hoisted;
          scan acc rest
        | i :: rest -> scan (i :: acc) rest
        | [] -> List.rev acc
      in
      let keep = scan [] b.instrs in
      if List.length keep <> List.length b.instrs then
        blocks.(bi) <- { b with instrs = keep })
    loop.body;
  match !hoisted with
  | [] -> (func, false)
  | moved ->
    (* A fresh preheader keeps things simple: insert, then append the
       hoisted code there.  We must translate block indices: insertion
       shifts blocks at or after the header by one. *)
    let func = Func.with_blocks func blocks in
    let func, pre_label = insert_preheader func loop in
    let pre_idx = Func.index_of_label func pre_label in
    let pb = Func.block func pre_idx in
    let out = Array.copy (Func.blocks func) in
    out.(pre_idx) <- { pb with instrs = pb.instrs @ List.rev moved } ;
    (Func.with_blocks func out, true)

let run func =
  (* One loop per round; indices go stale as soon as a preheader is
     inserted, so recompute the loop forest each time. *)
  let rec rounds func changed n =
    if n = 0 then (func, changed)
    else begin
      let g = Cfg.make func in
      let dom = Dom.compute g in
      let live = lazy (Liveness.compute func) in
      let loops = Loops.innermost_first (Loops.natural_loops g dom) in
      let rec try_loops = function
        | [] -> None
        | l :: rest -> (
          match hoist_loop func g dom live l with
          | f, true -> Some f
          | _, false -> try_loops rest)
      in
      match try_loops loops with
      | Some func -> rounds func true (n - 1)
      | None -> (func, changed)
    end
  in
  rounds func false 50
