(** Loop-invariant code motion (paper: "code motion").

    For each natural loop, innermost first, a preheader block is created
    (giving replication its "relocating the preheader" opportunities,
    §3.3.3) and pure instructions whose operands have no definition inside
    the loop are hoisted into it.  Hoisting conditions: the instruction's
    destination has exactly one definition in the loop, is not live into the
    header, and its block dominates every loop exit; loads hoist only out of
    loops containing no store or call. *)

val run : Flow.Func.t -> Flow.Func.t * bool

(** Create (or reuse the position for) a preheader block before the loop's
    header, redirecting every entry edge from outside the loop to it.
    Returns the new function and the preheader's label.  Exposed for
    {!Strength}. *)
val insert_preheader :
  Flow.Func.t -> Flow.Loops.loop -> Flow.Func.t * Ir.Label.t
