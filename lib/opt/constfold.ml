open Ir

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go k n = if n <= 1 then k else go (k + 1) (n lsr 1) in
  go 0 n

(* Simplify one instruction; None when unchanged. *)
let simplify machine (i : Rtl.instr) : Rtl.instr option =
  let legal j = if Machine.legal_instr machine j then Some j else None in
  match i with
  | Binop (op, loc, Imm a, Imm b) -> (
    match Rtl.eval_binop op a b with
    | v -> legal (Move (loc, Imm v))
    | exception Division_by_zero -> None)
  | Binop ((Add | Sub | Or | Xor | Shl | Shr), loc, a, Imm 0) ->
    legal (Move (loc, a))
  | Binop (Add, loc, Imm 0, a) -> legal (Move (loc, a))
  | Binop ((Mul | Div), loc, a, Imm 1) -> legal (Move (loc, a))
  | Binop (Mul, loc, Imm 1, a) -> legal (Move (loc, a))
  | Binop (Mul, loc, _, Imm 0) -> legal (Move (loc, Imm 0))
  | Binop (Mul, loc, Imm 0, _) -> legal (Move (loc, Imm 0))
  | Binop (And, loc, _, Imm 0) -> legal (Move (loc, Imm 0))
  | Binop (Mul, loc, a, Imm n) when is_pow2 n ->
    legal (Binop (Shl, loc, a, Imm (log2 n)))
  | Binop (Mul, loc, Imm n, a) when is_pow2 n ->
    legal (Binop (Shl, loc, a, Imm (log2 n)))
  | Unop (op, loc, Imm a) -> legal (Move (loc, Imm (Rtl.eval_unop op a)))
  (* Canonicalize commutative immediate-first operands. *)
  | Binop (op, loc, Imm a, b) when Rtl.commutative op ->
    legal (Binop (op, loc, b, Imm a))
  | _ -> None

(* Fold branches decided by a constant comparison within the same block.
   Registers holding known constants (from [Move r, Imm]) participate, so
   the fold also fires on the RISC model where [Cmp Imm Imm] is illegal and
   never appears literally. *)
let fold_branches instrs =
  let changed = ref false in
  let resolve consts = function
    | Rtl.Imm n -> Some n
    | Rtl.Reg r -> Reg.Map.find_opt r consts
    | Rtl.Mem _ -> None
  in
  let rec go consts last_cmp acc = function
    | [] -> List.rev acc
    | (Rtl.Cmp (x, y) as i) :: rest ->
      go consts (match resolve consts x, resolve consts y with
                 | Some a, Some b -> Some (a, b)
                 | _ -> None)
        (i :: acc) rest
    | Rtl.Branch (c, l) :: rest -> (
      match last_cmp with
      | Some (a, b) ->
        changed := true;
        if Rtl.eval_cond c a b then
          (* Always taken: unconditional jump; the rest is unreachable. *)
          go consts last_cmp (Rtl.Jump l :: acc) []
        else (* Never taken: drop the branch. *)
          go consts last_cmp acc rest
      | None -> go consts last_cmp (Rtl.Branch (c, l) :: acc) rest)
    | i :: rest ->
      let kills_cc = Reg.Set.mem Reg.Cc (Rtl.defs i) in
      let consts =
        let killed = Reg.Set.fold Reg.Map.remove (Rtl.defs i) consts in
        match i with
        | Rtl.Move (Lreg d, Imm n) -> Reg.Map.add d n killed
        | _ -> killed
      in
      go consts (if kills_cc then None else last_cmp) (i :: acc) rest
  in
  let out = go Reg.Map.empty None [] instrs in
  (out, !changed)

let run machine func =
  let changed = ref false in
  let func =
    Flow.Func.map_instrs
      (fun instrs ->
        let instrs =
          List.map
            (fun i ->
              (* Iterate local simplification to a fixpoint. *)
              let rec fix i n =
                if n = 0 then i
                else
                  match simplify machine i with
                  | Some i' ->
                    changed := true;
                    fix i' (n - 1)
                  | None -> i
              in
              fix i 8)
            instrs
        in
        let instrs, c = fold_branches instrs in
        if c then changed := true;
        instrs)
      func
  in
  (func, !changed)
