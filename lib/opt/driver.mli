(** The optimization driver: Figure 3 of the paper.

    Levels:
    - [Simple]: the standard optimizations only;
    - [Loops]: standard plus loop-condition replication ({!Replication.Loops_rep});
    - [Jumps]: standard plus generalized code replication ({!Replication.Jumps}).

    Every pass runs inside a protective boundary: the {!Flow.Check}
    verifier inspects the pass's output (cheap structural checks always;
    [verify_passes] adds the expensive dominance-based checks and a
    differential execution oracle on small functions).  When a pass
    produces ill-formed IR, raises, or miscompiles, the function is rolled
    back to the pass's input, a [Pass_quarantined] telemetry event and a
    {!Telemetry.Diag.t} are recorded, the pass is skipped for the rest of
    that function's compilation, and the pipeline continues.  One broken
    pass on one function no longer aborts the build. *)

type level = Simple | Loops | Jumps

val level_name : level -> string
val level_of_string : string -> level option

type options = {
  level : level;
  heuristic : Replication.Jumps.heuristic;
  max_rtls : int option;  (** replication-sequence length cap (paper §6) *)
  allocate : bool;  (** run register allocation (on by default) *)
  max_iterations : int;  (** cap on the Figure-3 do-while loop *)
  replicate_indirect : bool;
      (** allow replication sequences ending in an indirect jump (§6) *)
  enable_cse : bool;  (** EBB and global CSE (§3.3.2 cleanups) *)
  enable_licm : bool;  (** code motion (§3.3.3 preheader relocation) *)
  enable_strength : bool;  (** induction-variable strength reduction *)
  enable_isel : bool;  (** peephole combining (§3.3.2 instruction selection) *)
  verify_passes : bool;
      (** expensive per-pass verification: dominance-based def-before-use,
          program-level label uniqueness, and the differential execution
          oracle ({!Oracle}) on examples-sized functions *)
  certify : bool;
      (** static translation validation: after every changing pass, {!Tv}
          tries to prove the output simulates the input.  A refutation
          quarantines the pass and rolls the function back (like an oracle
          mismatch) with a [certify-refuted] diagnostic carrying the
          counterexample path; Unknown verdicts are warn-severity
          [uncertifiable-pass] / [certifier-timeout] diagnostics. *)
  displace : bool;
      (** run {!Displace} (branch-displacement selection) as the final
          pass on CISC, so the assembler prices short/word/long branch
          forms instead of the fixed 4-byte encoding.  On by default; a
          no-op on RISC. *)
  inject_fault : string option;
      (** test-only: corrupt the named pass's output to exercise the
          detection paths end to end.  Spec syntax PASS[:MODE]; modes:
          [dangling-jump] (ill-formed IR, caught by the verifier — the
          default), [flip-branch] and [drop-store] (well-formed
          miscompilations, caught by the static certifier or the oracle) *)
  budget : Telemetry.Budget.t option;
      (** resource budget for the compilation: the replication passes poll
          its wall-clock deadline and cancel flag, and its growth axis caps
          how many RTLs replication may add (as a percent of the
          function's input size).  Exhaustion degrades the function to the
          next-cheaper level (JUMPS -> LOOPS -> SIMPLE) with a
          [Budget_exhausted] warning diagnostic instead of aborting;
          SIMPLE never consults the budget, so compilation always
          completes. *)
}

val default_options : options
val options : ?level:level -> unit -> options

(** How {!options.inject_fault} corrupts the named pass's output. *)
type fault_mode = Fault_dangling | Fault_flip_branch | Fault_drop_store

(** Parse a PASS[:MODE] fault spec; [Error mode] names the unknown mode. *)
val parse_fault : string -> (string * fault_mode, string) result

(** Optimize one function for the machine.

    With [log], every pass runs under a telemetry span: a [Pass_begin] /
    [Pass_end] pair carrying the function's shape delta (RTLs, blocks,
    unconditional jumps before and after) and elapsed wall-clock time; each
    Figure-3 do-while round emits a [Fixpoint_iteration] event, and the
    replication and register-allocation passes report their per-decision
    events ({!Replication.Jumps.run}, {!Regalloc.run}).  The disabled
    (null) log costs one branch per pass.

    With [profiler], the same pass boundary charges each pass's wall time
    and GC allocation to its (function x pass) profiler row
    ({!Telemetry.Profiler.record_pass}); log and profiler are independent
    — either may be enabled without the other, and the null profiler
    costs one branch per pass.

    [diags] collects {!Telemetry.Diag.t} records for quarantined passes,
    fixpoint divergence, and ill-formed input; callers that omit it still
    get the telemetry events.  [verdicts] collects the static certifier's
    per-pass {!Tv.record}s under [options.certify].  [oracle] supplies
    the differential execution oracle consulted after every changing
    pass. *)
val optimize_func :
  ?log:Telemetry.Log.t ->
  ?profiler:Telemetry.Profiler.t ->
  ?diags:Telemetry.Diag.t list ref ->
  ?verdicts:Tv.record list ref ->
  ?oracle:Oracle.t ->
  options ->
  Ir.Machine.t ->
  Flow.Func.t ->
  Flow.Func.t

(** Like {!optimize_func} but with the replication pass supplied by the
    caller — used by tests to instrument or cap replication, or to inject
    a deliberately broken pass against the quarantine machinery. *)
val optimize_func_with :
  ?log:Telemetry.Log.t ->
  ?profiler:Telemetry.Profiler.t ->
  ?diags:Telemetry.Diag.t list ref ->
  ?verdicts:Tv.record list ref ->
  ?oracle:Oracle.t ->
  replicate:
    (?allow_irreducible:bool -> Flow.Func.t -> Flow.Func.t * bool) ->
  options ->
  Ir.Machine.t ->
  Flow.Func.t ->
  Flow.Func.t

(** Optimize a whole program.  When [options.verify_passes] is set, an
    {!Oracle} is built from the unoptimized program and consulted after
    every changing pass, and program-level checks (global label
    uniqueness) run on the result. *)
val optimize :
  ?log:Telemetry.Log.t ->
  ?profiler:Telemetry.Profiler.t ->
  ?diags:Telemetry.Diag.t list ref ->
  ?verdicts:Tv.record list ref ->
  options ->
  Ir.Machine.t ->
  Flow.Prog.t ->
  Flow.Prog.t

(** Parse + compile + optimize C-subset source. *)
val compile :
  ?log:Telemetry.Log.t ->
  ?profiler:Telemetry.Profiler.t ->
  ?diags:Telemetry.Diag.t list ref ->
  ?verdicts:Tv.record list ref ->
  options ->
  Ir.Machine.t ->
  string ->
  Flow.Prog.t

(** A stable textual signature of the pass pipeline — a component of the
    campaign store's compiler fingerprint.  Adding, removing or
    reordering passes changes this string, so cached results keyed by an
    older pipeline are never reused. *)
val pipeline_signature : string
