(** The optimization driver: Figure 3 of the paper.

    Levels:
    - [Simple]: the standard optimizations only;
    - [Loops]: standard plus loop-condition replication ({!Replication.Loops_rep});
    - [Jumps]: standard plus generalized code replication ({!Replication.Jumps}). *)

type level = Simple | Loops | Jumps

val level_name : level -> string
val level_of_string : string -> level option

type options = {
  level : level;
  heuristic : Replication.Jumps.heuristic;
  max_rtls : int option;  (** replication-sequence length cap (paper §6) *)
  allocate : bool;  (** run register allocation (on by default) *)
  max_iterations : int;  (** cap on the Figure-3 do-while loop *)
  replicate_indirect : bool;
      (** allow replication sequences ending in an indirect jump (§6) *)
  enable_cse : bool;  (** EBB and global CSE (§3.3.2 cleanups) *)
  enable_licm : bool;  (** code motion (§3.3.3 preheader relocation) *)
  enable_strength : bool;  (** induction-variable strength reduction *)
  enable_isel : bool;  (** peephole combining (§3.3.2 instruction selection) *)
}

val default_options : options
val options : ?level:level -> unit -> options

(** Optimize one function for the machine.

    With [log], every pass runs under a telemetry span: a [Pass_begin] /
    [Pass_end] pair carrying the function's shape delta (RTLs, blocks,
    unconditional jumps before and after) and elapsed wall-clock time; each
    Figure-3 do-while round emits a [Fixpoint_iteration] event, and the
    replication and register-allocation passes report their per-decision
    events ({!Replication.Jumps.run}, {!Regalloc.run}).  The disabled
    (null) log costs one branch per pass. *)
val optimize_func :
  ?log:Telemetry.Log.t -> options -> Ir.Machine.t -> Flow.Func.t -> Flow.Func.t

(** Like {!optimize_func} but with the replication pass supplied by the
    caller — used by tests to instrument or cap replication. *)
val optimize_func_with :
  ?log:Telemetry.Log.t ->
  replicate:
    (?allow_irreducible:bool -> Flow.Func.t -> Flow.Func.t * bool) ->
  options ->
  Ir.Machine.t ->
  Flow.Func.t ->
  Flow.Func.t

(** Optimize a whole program. *)
val optimize :
  ?log:Telemetry.Log.t -> options -> Ir.Machine.t -> Flow.Prog.t -> Flow.Prog.t

(** Parse + compile + optimize C-subset source. *)
val compile :
  ?log:Telemetry.Log.t -> options -> Ir.Machine.t -> string -> Flow.Prog.t
