(* Branch-displacement selection, the last pass of the CISC pipeline.

   Runs after register allocation on the final block layout: it solves
   the linear-time pessimistic form assignment (see {!Ir.Encode}) over
   the same linearization the assembler will use and attaches the plan
   to the function.  The pass never edits an instruction — displacement
   forms exist only in the size model — so the driver's oracle and
   certifier see an unchanged function body; what the boundary actually
   guards here is that the pass output still *is* that unchanged body
   (an injected fault shows up as an oracle mismatch or verifier
   violation like any other pass bug).

   "Changed" means the plan prices the function differently from the
   fixed-size model, i.e. at least one transfer left the 4-byte word
   form. *)

let run machine func =
  match machine.Ir.Machine.kind with
  | Ir.Machine.Risc -> (func, false)
  | Ir.Machine.Cisc ->
    let code, label_pos = Sim.Asm.linearize func in
    let plan = Ir.Encode.solve machine code label_pos in
    ( Flow.Func.set_encoding func (Some plan),
      plan.Ir.Encode.total <> plan.Ir.Encode.fixed_total )
