open Flow

let run func =
  let g = Cfg.make func in
  let keep = Cfg.reachable g in
  if Array.for_all Fun.id keep then (func, false)
  else begin
    let blocks =
      Func.blocks func |> Array.to_list
      |> List.filteri (fun i _ -> keep.(i))
      |> Array.of_list
    in
    (Func.with_blocks func blocks, true)
  end
