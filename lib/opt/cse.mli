(** Common subexpression elimination over extended basic blocks.

    Walks chains of single-predecessor blocks carrying a table of available
    expressions (register computations and memory loads).  Keys embed the
    {e version} of every register they mention, so redefinitions invalidate
    entries without explicit killing; memory loads additionally embed a
    memory version bumped by stores and calls.  A recomputation whose key is
    available in a register is replaced by a register move (cleaned up by
    {!Isel}/{!Deadvars}).

    Scope note: VPO's CSE is global; restricting to extended basic blocks
    keeps the pass trivially sound at joins.  The replication-specific
    payoff the paper describes (§3.3.2 — the initial value assigned before a
    replicated sequence propagating into it) is delivered by this pass
    together with {!Isel}'s copy propagation, because replication turns the
    join into straight-line code. *)

val run : Flow.Func.t -> Flow.Func.t * bool
