(** Branch chaining and trivial jump cleanup.

    - Branch/jump targets that land on an empty block or a block consisting
      only of an unconditional jump are redirected to the chain's end
      (cycle-safe).
    - A jump to the positionally next block is deleted.
    - A conditional branch to the positionally next block is deleted (both
      edges coincide).
    - A branch over a jump ([Branch c L1; Jump L2; L1:]) is folded into a
      reversed branch ([Branch !c L2]). *)

val run : Flow.Func.t -> Flow.Func.t * bool
