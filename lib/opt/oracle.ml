open Flow

type t = { prog : Prog.t; machine : Ir.Machine.t; max_steps : int; size_cap : int }

let make ?(max_steps = 2_000_000) ?(size_cap = 400) machine prog =
  { prog; machine; max_steps; size_cap }

let applies t func =
  Func.num_instrs func <= t.size_cap
  && Prog.find_func t.prog "main" <> None

(* Observable behaviour of the program with [func] substituted for its
   namesake.  The rest of the program is the unoptimized original: the
   simulator executes raw and mid-pipeline RTL alike. *)
type obs = Ran of string * int | Fault of string | Hung

let observe t func =
  let prog =
    {
      t.prog with
      Prog.funcs =
        List.map
          (fun f ->
            if String.equal (Func.name f) (Func.name func) then func else f)
          t.prog.Prog.funcs;
    }
  in
  match
    let asm = Sim.Asm.assemble t.machine prog in
    Sim.Interp.run ~max_steps:t.max_steps ~input:"" asm prog
  with
  | res -> if res.timed_out then Hung else Ran (res.output, res.exit_code)
  | exception Sim.Interp.Runtime_error msg -> Fault msg

let divergence t ~baseline ~candidate =
  match observe t baseline with
  | Fault _ | Hung -> None (* inconclusive: cannot blame the pass *)
  | Ran (out, code) -> (
    match observe t candidate with
    | Ran (out', code') when String.equal out out' && code = code' -> None
    | Ran (out', code') ->
      Some
        (Printf.sprintf
           "differential oracle: output %S exit %d, expected %S exit %d" out'
           code' out code)
    | Fault msg -> Some (Printf.sprintf "differential oracle: fault: %s" msg)
    | Hung ->
      Some
        (Printf.sprintf
           "differential oracle: no exit within %d steps (baseline exited %d)"
           t.max_steps code))
