open Flow

(* Local value numbering over extended basic blocks.  The fact domain
   (versioned expression tables) lives in [Analysis.Valnum]; this pass
   solves block-entry states with the shared worklist engine over the EBB
   forest — the subgraph keeping only the in-edge of reachable blocks with
   exactly one predecessor — then rewrites each block from its entry state.

   The forest is acyclic: a reachable single-predecessor cycle would need
   an edge into the entry block, which [Check] forbids, so the solve is a
   single topological pass.  Blocks outside the forest (joins, the entry,
   unreachable blocks) start from the empty state, exactly as a fresh EBB
   walk would. *)

module S = Analysis.Dataflow.Solver (struct
  type t = Analysis.Valnum.state

  let equal = Analysis.Valnum.equal
  let join = Analysis.Valnum.join
end)

let run func =
  let g = Cfg.make func in
  let n = Func.num_blocks func in
  let reach = Cfg.reachable g in
  let parent =
    Array.init n (fun i ->
        if not reach.(i) then None
        else match Cfg.preds g i with [ p ] when p <> i -> Some p | _ -> None)
  in
  let children = Array.make n [] in
  Array.iteri
    (fun i p ->
      match p with Some p -> children.(p) <- i :: children.(p) | None -> ())
    parent;
  let forest =
    {
      Analysis.Dataflow.nodes = n;
      succs = (fun i -> List.rev children.(i));
      preds = (fun i -> Option.to_list parent.(i));
      (* The CFG's reverse postorder also topologically orders the forest:
         a block's unique predecessor is always visited first. *)
      rpo = Cfg.reverse_postorder g;
    }
  in
  let blocks = Func.blocks func in
  let entry_state =
    let r =
      S.solve ~name:"cse-valnum" ~direction:Analysis.Dataflow.Forward
        ~graph:forest
        ~empty:Analysis.Valnum.empty
        ~init:(fun _ -> Analysis.Valnum.empty)
        ~transfer:(fun bi st ->
          List.fold_left Analysis.Valnum.step st blocks.(bi).Func.instrs)
        ()
    in
    r.S.input
  in
  let changed = ref false in
  let out =
    Array.mapi
      (fun bi (b : Func.block) ->
        let _, instrs =
          List.fold_left
            (fun (st, acc) i ->
              let st, i', c = Analysis.Valnum.rewrite st i in
              if c then changed := true;
              (st, i' :: acc))
            (entry_state.(bi), [])
            b.instrs
        in
        { b with instrs = List.rev instrs })
      blocks
  in
  if !changed then (Func.with_blocks func out, true) else (func, false)
