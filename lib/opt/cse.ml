open Ir
open Flow

(* Versioned operands make stale table entries unmatchable. *)
type varg =
  | Vimm of int
  | Vreg of Reg.t * int  (** register and its version at key creation *)

type vaddr =
  | Vbased of Reg.t * int * int
  | Vindexed of Reg.t * int * Reg.t * int * int * int
  | Vabs of string * int

type key =
  | Kbinop of Rtl.binop * varg * varg
  | Kunop of Rtl.unop * varg
  | Klea of vaddr
  | Kload of Rtl.width * vaddr * int  (** memory version *)

module Key_map = Map.Make (struct
  type t = key

  let compare = compare
end)

type walk_state = {
  versions : int Reg.Map.t;
  memver : int;
  table : (Reg.t * int) Key_map.t;  (** key -> holding reg, reg version *)
}

let version st r =
  match Reg.Map.find_opt r st.versions with Some v -> v | None -> 0

let bump st r = { st with versions = Reg.Map.add r (version st r + 1) st.versions }

let varg st = function
  | Rtl.Reg r -> Some (Vreg (r, version st r))
  | Rtl.Imm n -> Some (Vimm n)
  | Rtl.Mem _ -> None

let vaddr st = function
  | Rtl.Based (r, d) -> Vbased (r, version st r, d)
  | Rtl.Indexed (b, i, s, d) -> Vindexed (b, version st b, i, version st i, s, d)
  | Rtl.Abs (s, o) -> Vabs (s, o)

(* The key computed by an instruction into a register, if any. *)
let key_of st (i : Rtl.instr) =
  match i with
  | Rtl.Binop (op, Lreg d, a, b) -> (
    match varg st a, varg st b with
    | Some va, Some vb ->
      let va, vb =
        (* Canonical order for commutative operators. *)
        if Rtl.commutative op && compare vb va < 0 then (vb, va) else (va, vb)
      in
      Some (d, Kbinop (op, va, vb))
    | _ -> None)
  | Rtl.Unop (op, Lreg d, a) -> (
    match varg st a with Some va -> Some (d, Kunop (op, va)) | None -> None)
  | Rtl.Lea (d, a) -> Some (d, Klea (vaddr st a))
  | Rtl.Move (Lreg d, Mem (w, a)) -> Some (d, Kload (w, vaddr st a, st.memver))
  | _ -> None

let after_effects st i =
  let st = Reg.Set.fold (fun r st -> bump st r) (Rtl.defs i) st in
  if Rtl.writes_mem i || (match i with Rtl.Call _ -> true | _ -> false) then
    { st with memver = st.memver + 1 }
  else st

let process_instr st i =
  match key_of st i with
  | None -> (after_effects st i, i, false)
  | Some (d, key) -> (
    match Key_map.find_opt key st.table with
    | Some (r, rv) when version st r = rv && not (Reg.equal r d) ->
      let st = after_effects st i in
      (st, Rtl.Move (Lreg d, Reg r), true)
    | _ ->
      let st = after_effects st i in
      (* Record after bumping: d's new version holds the value. *)
      let st = { st with table = Key_map.add key (d, version st d) st.table } in
      (st, i, false))

let run func =
  let g = Cfg.make func in
  let n = Func.num_blocks func in
  let single_pred = Array.init n (fun i -> List.length (Cfg.preds g i) = 1) in
  let out = Array.copy (Func.blocks func) in
  let changed = ref false in
  let visited = Array.make n false in
  (* Walk an EBB: process this block, then extend into single-pred
     successors. *)
  let rec walk st bi =
    visited.(bi) <- true;
    let st, instrs =
      List.fold_left
        (fun (st, acc) i ->
          let st, i', c = process_instr st i in
          if c then changed := true;
          (st, i' :: acc))
        (st, []) out.(bi).Func.instrs
    in
    out.(bi) <- { (out.(bi)) with instrs = List.rev instrs };
    List.iter
      (fun s -> if single_pred.(s) && not visited.(s) then walk st s)
      (Cfg.succs g bi)
  in
  let empty = { versions = Reg.Map.empty; memver = 0; table = Key_map.empty } in
  for i = 0 to n - 1 do
    if (not visited.(i)) && not single_pred.(i) then walk empty i
  done;
  (* Any leftovers (unreachable single-pred cycles). *)
  for i = 0 to n - 1 do
    if not visited.(i) then walk empty i
  done;
  if !changed then (Func.with_blocks func out, true) else (func, false)
