(** Branch-displacement selection (CISC only; a no-op on RISC).

    Solves {!Ir.Encode.solve} over the function's final linearization
    and attaches the plan via {!Flow.Func.set_encoding}.  Must run after
    every block-changing pass (in practice: last, after register
    allocation) — {!Flow.Func.with_blocks} drops the plan precisely so a
    stale one can never misprice a reshaped function.  Reports a change
    when the plan's total differs from the fixed-size model's. *)
val run : Ir.Machine.t -> Flow.Func.t -> Flow.Func.t * bool
