open Ir

(* Facts known about a register's current value within a block. *)
type fact =
  | Copy of Rtl.operand  (** register holds a copy of an operand (Reg/Imm) *)
  | Eaddr of Rtl.addr  (** register holds an effective address *)
  | Loaded of Rtl.width * Rtl.addr  (** register holds a value loaded from memory *)
  | Scaled of Reg.t * int  (** register = index * scale *)
  | Sum of Reg.t * Reg.t * int  (** register = base + index * scale *)

let fact_regs = function
  | Copy (Reg r) -> [ r ]
  | Copy (Imm _) -> []
  | Copy (Mem (_, a)) | Eaddr a | Loaded (_, a) -> (
    match a with
    | Based (r, _) -> [ r ]
    | Indexed (b, i, _, _) -> [ b; i ]
    | Abs _ -> [])
  | Scaled (r, _) -> [ r ]
  | Sum (b, i, _) -> [ b; i ]

type state = {
  machine : Machine.t;
  facts : (Reg.t, fact) Hashtbl.t;
  mutable changed : bool;
}

let kill st r =
  Hashtbl.remove st.facts r;
  let stale =
    Hashtbl.fold
      (fun key fact acc ->
        if List.exists (Reg.equal r) (fact_regs fact) then key :: acc else acc)
      st.facts []
  in
  List.iter (Hashtbl.remove st.facts) stale

let kill_loads st =
  let stale =
    Hashtbl.fold
      (fun key fact acc ->
        match fact with Loaded _ -> key :: acc | _ -> acc)
      st.facts []
  in
  List.iter (Hashtbl.remove st.facts) stale

(* --- Substitution --- *)

let subst_reg_operand st r =
  match Hashtbl.find_opt st.facts r with
  | Some (Copy ((Reg _ | Imm _) as o)) -> Some o
  | Some (Loaded (w, a)) when st.machine.Machine.kind = Machine.Cisc ->
    Some (Rtl.Mem (w, a))
  | _ -> None

(* Fold known effective addresses / index sums into an address. *)
let subst_addr st (a : Rtl.addr) : Rtl.addr option =
  match a with
  | Based (r, d) -> (
    match Hashtbl.find_opt st.facts r with
    | Some (Eaddr (Based (b, d2))) -> Some (Based (b, d + d2))
    | Some (Eaddr (Abs (s, o))) -> Some (Abs (s, o + d))
    | Some (Eaddr (Indexed (b, i, sc, d2))) -> Some (Indexed (b, i, sc, d + d2))
    | Some (Sum (b, i, sc)) when st.machine.Machine.kind = Machine.Cisc ->
      Some (Indexed (b, i, sc, d))
    | Some (Copy (Reg s)) -> Some (Based (s, d))
    | _ -> None)
  | Indexed _ | Abs _ -> None

let improve_operand st (o : Rtl.operand) : Rtl.operand option =
  match o with
  | Reg r -> subst_reg_operand st r
  | Imm _ -> None
  | Mem (w, a) -> (
    match subst_addr st a with
    | Some a' -> Some (Mem (w, a'))
    | None -> None)

let improve_loc st (l : Rtl.loc) : Rtl.loc option =
  match l with
  | Lreg _ -> None
  | Lmem (w, a) -> (
    match subst_addr st a with
    | Some a' -> Some (Lmem (w, a'))
    | None -> None)

(* Try a rewrite; accept only machine-legal results. *)
let try_rewrite st current candidate =
  if Rtl.equal_instr current candidate then None
  else if Machine.legal_instr st.machine candidate then Some candidate
  else None

(* One substitution step on an instruction; None when no improvement. *)
let improve_instr st (i : Rtl.instr) : Rtl.instr option =
  let ( ||| ) a b = match a with Some _ -> a | None -> b () in
  match i with
  | Rtl.Move (l, s) ->
    (match improve_operand st s with
    | Some s' -> try_rewrite st i (Rtl.Move (l, s'))
    | None -> None)
    ||| fun () ->
    (match improve_loc st l with
    | Some l' -> try_rewrite st i (Rtl.Move (l', s))
    | None -> None)
  | Rtl.Lea (r, a) -> (
    match subst_addr st a with
    | Some a' -> try_rewrite st i (Rtl.Lea (r, a'))
    | None -> None)
  | Rtl.Binop (op, l, a, b) ->
    (match improve_operand st b with
    | Some b' -> try_rewrite st i (Rtl.Binop (op, l, a, b'))
    | None -> None)
    ||| (fun () ->
          match improve_operand st a with
          | Some a' -> try_rewrite st i (Rtl.Binop (op, l, a', b))
          | None -> None)
    ||| fun () ->
    (match improve_loc st l with
    | Some l' -> try_rewrite st i (Rtl.Binop (op, l', a, b))
    | None -> None)
  | Rtl.Unop (op, l, a) -> (
    match improve_operand st a with
    | Some a' -> try_rewrite st i (Rtl.Unop (op, l, a'))
    | None -> None)
  | Rtl.Cmp (a, b) ->
    (match improve_operand st a with
    | Some a' -> try_rewrite st i (Rtl.Cmp (a', b))
    | None -> None)
    ||| fun () ->
    (match improve_operand st b with
    | Some b' -> try_rewrite st i (Rtl.Cmp (a, b'))
    | None -> None)
  | Rtl.Ijump _ | Rtl.Branch _ | Rtl.Jump _ | Rtl.Call _ | Rtl.Ret
  | Rtl.Enter _ | Rtl.Leave | Rtl.Nop ->
    None

(* Record what an instruction teaches us, after killing its definitions. *)
let record st (i : Rtl.instr) =
  Reg.Set.iter (kill st) (Rtl.defs i);
  if Rtl.writes_mem i then kill_loads st;
  (match i with
  | Rtl.Call _ -> kill_loads st
  | _ -> ());
  match i with
  | Rtl.Move (Lreg d, (Reg s as o)) ->
    if not (Reg.equal d s) then Hashtbl.replace st.facts d (Copy o)
  | Rtl.Move (Lreg d, (Imm _ as o)) -> Hashtbl.replace st.facts d (Copy o)
  | Rtl.Move (Lreg d, Mem (w, a)) ->
    let ok_addr =
      match a with
      | Based (r, _) -> not (Reg.equal r d)
      | Indexed (b, i, _, _) -> (not (Reg.equal b d)) && not (Reg.equal i d)
      | Abs _ -> true
    in
    if ok_addr then Hashtbl.replace st.facts d (Loaded (w, a))
  | Rtl.Lea (d, a) ->
    let ok_addr =
      match a with
      | Based (r, _) -> not (Reg.equal r d)
      | Indexed (b, i, _, _) -> (not (Reg.equal b d)) && not (Reg.equal i d)
      | Abs _ -> true
    in
    if ok_addr then Hashtbl.replace st.facts d (Eaddr a)
  | Rtl.Binop (Shl, Lreg d, Reg i, Imm k)
    when (k = 1 || k = 2) && not (Reg.equal d i) ->
    Hashtbl.replace st.facts d (Scaled (i, 1 lsl k))
  | Rtl.Binop (Add, Lreg d, Reg b, Reg i)
    when (not (Reg.equal d b)) && not (Reg.equal d i) -> (
    match Hashtbl.find_opt st.facts i with
    | Some (Scaled (idx, sc)) when not (Reg.equal idx d) ->
      Hashtbl.replace st.facts d (Sum (b, idx, sc))
    | _ -> Hashtbl.replace st.facts d (Sum (b, i, 1)))
  | _ -> ()

let forward_pass st instrs =
  List.map
    (fun i ->
      let rec fix i n =
        if n = 0 then i
        else
          match improve_instr st i with
          | Some i' ->
            st.changed <- true;
            fix i' (n - 1)
          | None -> i
      in
      let i = fix i 6 in
      record st i;
      i)
    instrs

(* --- Backward pass: CISC fusions that need dead-after information --- *)

let backward_pass st live_out instrs =
  if st.machine.Machine.kind <> Machine.Cisc then instrs
  else begin
    let arr = Array.of_list instrs in
    let n = Array.length arr in
    (* live.(k) = registers live after instruction k. *)
    let live = Array.make (n + 1) live_out in
    for k = n - 1 downto 0 do
      live.(k) <- Flow.Liveness.step arr.(k) live.(k + 1)
    done;
    (* live.(k) is liveness *before* instr k as computed; shift so that
       after(k) = live.(k+1). *)
    let dead_after k r = not (Reg.Set.mem r live.(k + 1)) in
    let removed = Array.make n false in
    (* Read-modify-write over one cell:
       t = M[m]; t = t op b; M[m] = t   =>   M[m] = M[m] op b *)
    for k = 0 to n - 3 do
      if (not removed.(k)) && (not removed.(k + 1)) && not removed.(k + 2)
      then begin
        match arr.(k), arr.(k + 1), arr.(k + 2) with
        | Rtl.Move (Lreg t, Mem (w, m)),
          Rtl.Binop (op, Lreg t', Reg t'', b),
          Rtl.Move (Lmem (w', m'), Reg t''')
          when Reg.equal t t' && Reg.equal t t'' && Reg.equal t t''' && w = w'
               && m = m'
               && (not (Reg.Set.mem t (Rtl.operand_regs b)))
               && dead_after (k + 2) t ->
          let fused = Rtl.Binop (op, Lmem (w, m), Mem (w, m), b) in
          if Machine.legal_instr st.machine fused then begin
            arr.(k) <- fused;
            removed.(k + 1) <- true;
            removed.(k + 2) <- true;
            st.changed <- true
          end
        | _ -> ()
      end
    done;
    for k = 0 to n - 2 do
      if (not removed.(k)) && not removed.(k + 1) then begin
        match arr.(k), arr.(k + 1) with
        (* t = M[m] op b ; M[m] = t   =>   M[m] = M[m] op b *)
        | Rtl.Binop (op, Lreg t, Mem (w, m), b), Rtl.Move (Lmem (w', m'), Reg t')
          when Reg.equal t t' && w = w' && m = m' && dead_after (k + 1) t ->
          let fused = Rtl.Binop (op, Lmem (w, m), Mem (w, m), b) in
          if Machine.legal_instr st.machine fused then begin
            arr.(k) <- fused;
            removed.(k + 1) <- true;
            st.changed <- true
          end
        (* t = src ; M[m] = t   =>   M[m] = src (mem-to-mem / imm store) *)
        | Rtl.Move (Lreg t, src), Rtl.Move (Lmem (w, m), Reg t')
          when Reg.equal t t' && dead_after (k + 1) t ->
          let fused = Rtl.Move (Rtl.Lmem (w, m), src) in
          if Machine.legal_instr st.machine fused then begin
            arr.(k) <- fused;
            removed.(k + 1) <- true;
            st.changed <- true
          end
        | _ -> ()
      end
    done;
    List.filteri (fun k _ -> not removed.(k)) (Array.to_list arr)
  end

let run machine func =
  let live = Flow.Liveness.compute func in
  let st = { machine; facts = Hashtbl.create 32; changed = false } in
  let blocks =
    Array.mapi
      (fun bi (b : Flow.Func.block) ->
        Hashtbl.reset st.facts;
        let instrs = forward_pass st b.instrs in
        let instrs = backward_pass st (Flow.Liveness.live_out live bi) instrs in
        { b with instrs })
      (Flow.Func.blocks func)
  in
  if st.changed then (Flow.Func.with_blocks func blocks, true) else (func, false)
