open Ir
open Flow

let run func =
  let n = Func.num_blocks func in
  (* Chains of positionally consecutive blocks connected by fall-through. *)
  let chains = ref [] in
  let cur = ref [] in
  for i = 0 to n - 1 do
    cur := i :: !cur;
    if not (Func.falls_through (Func.block func i)) || i = n - 1 then begin
      chains := List.rev !cur :: !chains;
      cur := []
    end
  done;
  let chains = Array.of_list (List.rev !chains) in
  let nc = Array.length chains in
  (* Chain index of each head label. *)
  let head_chain = Hashtbl.create 16 in
  Array.iteri
    (fun c blocks ->
      match blocks with
      | head :: _ -> Hashtbl.replace head_chain (Func.block func head).Func.label c
      | [] -> ())
    chains;
  (* The chain a chain's trailing jump would like to precede. *)
  let jump_succ c =
    match chains.(c) with
    | [] -> None
    | blocks -> (
      let last = List.nth blocks (List.length blocks - 1) in
      match Func.terminator (Func.block func last) with
      | Some (Rtl.Jump l) -> Hashtbl.find_opt head_chain l
      | Some _ | None -> None)
  in
  let placed = Array.make nc false in
  let order = ref [] in
  let next_unplaced from =
    let rec go i = if i >= nc then None else if placed.(i) then go (i + 1) else Some i in
    go from
  in
  let rec place c =
    placed.(c) <- true;
    order := c :: !order;
    match jump_succ c with
    | Some c' when (not placed.(c')) && c' <> 0 -> place c'
    | Some _ | None -> (
      match next_unplaced 0 with
      | Some c' -> place c'
      | None -> ())
  in
  if nc > 0 then place 0;
  let order = List.rev !order in
  let changed = order <> List.init nc Fun.id in
  if not changed then (func, false)
  else begin
    let blocks =
      List.concat_map (fun c -> List.map (Func.block func) chains.(c)) order
      |> Array.of_list
    in
    (Func.with_blocks func blocks, true)
  end
