(** Global common subexpression elimination by available-expressions
    dataflow (VPO's CSE was global; {!Cse} covers extended basic blocks,
    this pass the joins).

    Scope: pure register computations ([Binop]/[Unop]/[Lea] over
    registers and immediates).  Memory loads are left to {!Cse}, whose
    version stamps handle store/call invalidation precisely.

    Mechanism: the classic temp rewrite.  For every expression [e] that is
    available at some recomputation site, each site computing [e] gets
    [t_e := d] appended, and the recomputation becomes [d := t_e].  Unused
    temps and their copies are swept by {!Deadvars}; {!Regalloc}'s move
    bias usually coalesces the rest. *)

val run : Flow.Func.t -> Flow.Func.t * bool
