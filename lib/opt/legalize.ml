open Ir

let check machine func =
  Array.for_all
    (fun (b : Flow.Func.block) ->
      List.for_all (Machine.legal_instr machine) b.instrs)
    (Flow.Func.blocks func)

let reg_in_operand r o = Reg.Set.mem r (Rtl.operand_regs o)

let is_mem = function Rtl.Mem _ -> true | Rtl.Reg _ | Rtl.Imm _ -> false

let rec expand machine fresh (i : Rtl.instr) : Rtl.instr list =
  if Machine.legal_instr machine i then [ i ]
  else begin
    match machine.Machine.kind with
    | Machine.Risc -> expand_risc machine fresh i
    | Machine.Cisc -> expand_cisc machine fresh i
  end

(* Load a memory or immediate operand into a fresh register. *)
and load_operand machine fresh o =
  let t = fresh () in
  (expand machine fresh (Rtl.Move (Lreg t, o)), Rtl.Reg t)

(* Turn an address into a RISC-legal Based form. *)
and risc_addr machine fresh a =
  match a with
  | Rtl.Based (_, d) when d >= -4096 && d <= 4095 -> ([], a)
  | Rtl.Based (r, d) ->
    let t = fresh () in
    (expand machine fresh (Rtl.Binop (Add, Lreg t, Reg r, Imm d)),
     Rtl.Based (t, 0))
  | Rtl.Abs _ ->
    let t = fresh () in
    ([ Rtl.Lea (t, a) ], Rtl.Based (t, 0))
  | Rtl.Indexed (b, i, s, d) ->
    let t = fresh () in
    let scale =
      if s = 1 then [ Rtl.Move (Rtl.Lreg t, Reg i) ]
      else if s = 2 || s = 4 || s = 8 then
        [ Rtl.Binop (Shl, Lreg t, Reg i, Imm (if s = 2 then 1 else if s = 4 then 2 else 3)) ]
      else [ Rtl.Binop (Mul, Lreg t, Reg i, Imm s) ]
    in
    let u = fresh () in
    (scale @ [ Rtl.Binop (Add, Lreg u, Reg b, Reg t) ], Rtl.Based (u, d))

and expand_risc machine fresh (i : Rtl.instr) =
  let load o = load_operand machine fresh o in
  match i with
  | Move (Lreg d, Mem (w, a)) ->
    let pre, a' = risc_addr machine fresh a in
    pre @ [ Move (Lreg d, Mem (w, a')) ]
  | Move (Lmem (w, a), src) ->
    let pre1, src' =
      match src with
      | Reg _ -> ([], src)
      | Imm _ | Mem _ -> load src
    in
    let pre2, a' = risc_addr machine fresh a in
    pre1 @ pre2 @ [ Move (Lmem (w, a'), src') ]
  | Move (Lreg _, (Reg _ | Imm _)) -> [ i ]
  | Lea (d, a) -> (
    match a with
    | Based _ | Abs _ -> [ i ]
    | Indexed _ ->
      let pre, a' = risc_addr machine fresh a in
      pre @ expand machine fresh (Lea (d, a')))
  | Binop (op, Lmem (w, a), x, y) ->
    let t = fresh () in
    expand machine fresh (Binop (op, Lreg t, x, y))
    @ expand machine fresh (Move (Lmem (w, a), Reg t))
  | Binop (op, Lreg d, (Imm x as a), (Imm y as b)) -> (
    (* Both constant: fold, unless it would hide a runtime fault. *)
    match Rtl.eval_binop op x y with
    | v -> [ Move (Lreg d, Imm v) ]
    | exception Division_by_zero ->
      let pre, a' = load_operand machine fresh a in
      pre @ [ Binop (op, Lreg d, a', b) ])
  | Binop (op, Lreg d, a, b) ->
    let pre1, a' =
      match a with
      | Reg _ -> ([], a)
      | Imm _ when Rtl.commutative op && not (is_mem b) -> ([], a)
      | Imm _ | Mem _ -> load a
    in
    (* After a commutative swap the immediate lands on the right. *)
    let a', b' =
      match a' with
      | Imm _ -> (b, a')
      | Reg _ | Mem _ -> (a', b)
    in
    let pre2, b'' =
      match b' with Mem _ -> load b' | Reg _ | Imm _ -> ([], b')
    in
    pre1 @ pre2 @ [ Binop (op, Lreg d, a', b'') ]
  | Unop (op, Lmem (w, a), x) ->
    let t = fresh () in
    expand machine fresh (Unop (op, Lreg t, x))
    @ expand machine fresh (Move (Lmem (w, a), Reg t))
  | Unop (op, Lreg d, x) -> (
    match x with
    | Reg _ -> [ i ]
    | Imm n -> [ Move (Lreg d, Imm (Rtl.eval_unop op n)) ]
    | Mem _ ->
      let pre, x' = load x in
      pre @ [ Unop (op, Lreg d, x') ])
  | Cmp (a, b) ->
    let pre1, a' =
      match a with Reg _ -> ([], a) | Imm _ | Mem _ -> load a
    in
    let pre2, b' = match b with Mem _ -> load b | Reg _ | Imm _ -> ([], b) in
    pre1 @ pre2 @ [ Cmp (a', b') ]
  | Branch _ | Jump _ | Ijump _ | Call _ | Ret | Enter _ | Leave | Nop -> [ i ]

and expand_cisc machine fresh (i : Rtl.instr) =
  let load o = load_operand machine fresh o in
  match i with
  | Move _ -> [ i ] (* all CISC moves are legal, incl. mem-to-mem *)
  | Lea _ -> [ i ]
  | Binop (op, loc, a, b) ->
    if Machine.same_loc_operand loc a then begin
      (* Two-address shape already; reduce memory-operand count. *)
      let mem_count =
        (match loc with Rtl.Lmem _ -> 1 | Rtl.Lreg _ -> 0)
        + if is_mem b then 1 else 0
      in
      if mem_count <= 1 then [ i ]
      else begin
        let pre, b' = load b in
        pre @ [ Binop (op, loc, a, b') ]
      end
    end
    else if Rtl.commutative op && Machine.same_loc_operand loc b then
      expand machine fresh (Binop (op, loc, b, a))
    else begin
      match loc with
      | Lreg d when not (reg_in_operand d b) ->
        expand machine fresh (Move (Lreg d, a))
        @ expand machine fresh (Binop (op, Lreg d, Reg d, b))
      | Lreg _ | Lmem _ ->
        let t = fresh () in
        expand machine fresh (Move (Lreg t, a))
        @ expand machine fresh (Binop (op, Lreg t, Reg t, b))
        @ expand machine fresh (Move (loc, Reg t))
    end
  | Unop (op, loc, a) ->
    if Machine.same_loc_operand loc a then [ i ]
    else begin
      match loc with
      | Lreg d ->
        expand machine fresh (Move (Lreg d, a))
        @ [ Rtl.Unop (op, Lreg d, Reg d) ]
      | Lmem _ ->
        let t = fresh () in
        expand machine fresh (Move (Lreg t, a))
        @ [ Rtl.Unop (op, Lreg t, Reg t) ]
        @ expand machine fresh (Move (loc, Reg t))
    end
  | Cmp (a, b) ->
    if is_mem a && is_mem b then begin
      let pre, a' = load a in
      pre @ [ Cmp (a', b) ]
    end
    else [ i ]
  | Branch _ | Jump _ | Ijump _ | Call _ | Ret | Enter _ | Leave | Nop -> [ i ]

let run machine func =
  let fresh () = Flow.Func.fresh_reg func in
  let out =
    Flow.Func.map_instrs
      (fun instrs -> List.concat_map (expand machine fresh) instrs)
      func
  in
  assert (check machine out);
  out
