open Ir
open Flow

let run func =
  let live = Liveness.compute func in
  let changed = ref false in
  let blocks =
    Array.mapi
      (fun i (b : Func.block) ->
        let instrs =
          Liveness.fold_backward live
            (fun acc instr ~live_after ->
              let self_move =
                match instr with
                | Rtl.Move (Lreg d, Reg s) -> Reg.equal d s
                | _ -> false
              in
              let defs = Rtl.defs instr in
              let dead =
                Rtl.is_pure instr
                && (not (Reg.Set.is_empty defs))
                && not (Reg.Set.exists (fun d -> Reg.Set.mem d live_after) defs)
              in
              if self_move || dead then begin
                changed := true;
                acc
              end
              else instr :: acc)
            i ~init:[]
        in
        { b with instrs })
      (Func.blocks func)
  in
  if !changed then (Func.with_blocks func blocks, true) else (func, false)
