open Ir
open Flow

(* Find the unique in-loop definition of each register, or mark it
   multiply-defined. *)
type definfo = Single of int * Rtl.instr  (* block, instr *) | Many

let loop_def_map func (loop : Loops.loop) =
  Loops.Int_set.fold
    (fun bi acc ->
      List.fold_left
        (fun acc i ->
          Reg.Set.fold
            (fun r acc ->
              Reg.Map.update r
                (function
                  | None -> Some (Single (bi, i))
                  | Some _ -> Some Many)
                acc)
            (Rtl.defs i) acc)
        acc (Func.block func bi).instrs)
    loop.body Reg.Map.empty

(* Basic IV: single def of the shape i := i + c or i := i - c. *)
let basic_iv_step defmap r =
  match Reg.Map.find_opt r defmap with
  | Some (Single (_, Rtl.Binop (Add, Lreg d, Reg s, Imm c)))
    when Reg.equal d s && Reg.equal d r ->
    Some c
  | Some (Single (_, Rtl.Binop (Sub, Lreg d, Reg s, Imm c)))
    when Reg.equal d s && Reg.equal d r ->
    Some (-c)
  | _ -> None

let reduce_loop func (loop : Loops.loop) =
  let defmap = loop_def_map func loop in
  (* Find one reducible multiplication: t := i * k. *)
  let found = ref None in
  Loops.Int_set.iter
    (fun bi ->
      if !found = None then
        List.iter
          (fun instr ->
            if !found = None then
              match instr with
              | Rtl.Binop (Mul, Lreg t, Reg i, Imm k)
                when (not (Reg.equal t i))
                     && basic_iv_step defmap i <> None
                     && (match Reg.Map.find_opt t defmap with
                        | Some (Single (_, d)) -> Rtl.equal_instr d instr
                        | _ -> false) ->
                found := Some (bi, instr, i, k, Option.get (basic_iv_step defmap i))
              | _ -> ())
          (Func.block func bi).instrs)
    loop.body;
  match !found with
  | None -> (func, false)
  | Some (_bi, mul_instr, iv, k, step) ->
    let t' = Func.fresh_reg func in
    let iv_def =
      match Reg.Map.find_opt iv defmap with
      | Some (Single (bi, d)) -> (bi, d)
      | _ -> assert false
    in
    let blocks = Array.copy (Func.blocks func) in
    (* Replace the multiplication and augment the IV increment. *)
    Loops.Int_set.iter
      (fun bi ->
        let b = blocks.(bi) in
        let instrs =
          List.concat_map
            (fun instr ->
              if Rtl.equal_instr instr mul_instr then
                [ Rtl.Move
                    (Lreg
                       (match mul_instr with
                       | Rtl.Binop (_, Lreg t, _, _) -> t
                       | _ -> assert false),
                     Reg t') ]
              else if bi = fst iv_def && Rtl.equal_instr instr (snd iv_def)
              then
                [ instr; Rtl.Binop (Add, Lreg t', Reg t', Imm (step * k)) ]
              else [ instr ])
            b.instrs
        in
        blocks.(bi) <- { b with instrs })
      loop.body;
    let func = Func.with_blocks func blocks in
    (* Initialize t' = iv * k in a fresh preheader. *)
    let func, pre_label = Licm.insert_preheader func loop in
    let pre_idx = Func.index_of_label func pre_label in
    let pb = Func.block func pre_idx in
    let out = Array.copy (Func.blocks func) in
    (* Two-address-safe initialization: t' := iv; t' := t' * k. *)
    out.(pre_idx) <-
      { pb with
        instrs =
          pb.instrs
          @ [ Rtl.Move (Lreg t', Reg iv);
              Rtl.Binop (Mul, Lreg t', Reg t', Imm k);
            ]
      };
    (Func.with_blocks func out, true)

let run func =
  let rec rounds func changed n =
    if n = 0 then (func, changed)
    else begin
      let g = Cfg.make func in
      let dom = Dom.compute g in
      let loops = Loops.innermost_first (Loops.natural_loops g dom) in
      let rec try_loops = function
        | [] -> None
        | l :: rest -> (
          match reduce_loop func l with
          | f, true -> Some f
          | _, false -> try_loops rest)
      in
      match try_loops loops with
      | Some func -> rounds func true (n - 1)
      | None -> (func, changed)
    end
  in
  rounds func false 20
