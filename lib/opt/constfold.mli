(** Constant folding, algebraic simplification, and constant folding at
    conditional branches (paper §3.3.1).

    Folding a comparison of two constants deletes the conditional branch or
    turns it into an unconditional jump, exposing dead code — one of the new
    optimization opportunities replication creates. *)

val run : Ir.Machine.t -> Flow.Func.t -> Flow.Func.t * bool
