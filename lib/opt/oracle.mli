(** Per-pass differential execution oracle (enabled by [--verify-passes]).

    Holds the program a function under optimization came from.  After a
    pass changes a function, the driver substitutes the pass's input
    (last-good) and output (candidate) versions into that program in turn,
    executes both on the simulator with empty input and a bounded step
    budget, and compares the observable behaviour (output bytes and exit
    code).  A divergence convicts the pass of a miscompile that no
    structural check can see.

    The oracle only fires on [examples/]-sized functions ([size_cap]
    RTLs); the baseline run must terminate cleanly for a verdict — if it
    faults or exhausts the budget the comparison is inconclusive and the
    pass is given the benefit of the doubt. *)

type t

val make : ?max_steps:int -> ?size_cap:int -> Ir.Machine.t -> Flow.Prog.t -> t

(** Whether the oracle will run at all for this candidate (size gate). *)
val applies : t -> Flow.Func.t -> bool

(** [divergence t ~baseline ~candidate] is [Some message] when the two
    versions of the function behave observably differently, [None] when
    they agree or the comparison is inconclusive. *)
val divergence :
  t -> baseline:Flow.Func.t -> candidate:Flow.Func.t -> string option
