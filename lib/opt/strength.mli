(** Induction-variable strength reduction (paper: "strength reduction" and
    "recurrences").

    For each natural loop: a {e basic induction variable} [i] is a register
    with exactly one definition in the loop, of the form [i := i ± c] with
    constant [c].  A multiplication [t := i * k] ([k] a loop-invariant
    constant, the only definition of [t] in the loop) is reduced by keeping
    a shadow register [t'] with [t' = i * k] — initialized in the loop
    preheader and advanced by [±c*k] right after [i]'s increment — and
    replacing the multiplication with a move from [t'].

    Simple strength reductions that need no loop context (multiply by a
    power of two becoming a shift) live in {!Constfold}. *)

val run : Flow.Func.t -> Flow.Func.t * bool
