(** Shape generic RTL into machine-legal instructions.

    Runs once right after code generation; every later pass preserves
    legality ({!Ir.Machine.legal_instr}).  The RISC model needs load/store
    expansion, address materialization and register operands; the CISC model
    needs two-address form and at most one memory operand. *)

val run : Ir.Machine.t -> Flow.Func.t -> Flow.Func.t

(** All instructions legal for the machine — pass postcondition, checked in
    tests. *)
val check : Ir.Machine.t -> Flow.Func.t -> bool
