module Json = Telemetry.Json
module Diag = Telemetry.Diag

type t = {
  dir : string;
  mu : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable corrupt : int;
  mutable commits : int;
  mutable evicted : int;
}

type lookup = Hit of Json.t | Miss | Corrupt of Diag.t

let default_dir = "_campaign"
let magic = "jumprep-store 1"

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let rec mkdir_p path =
  if path = "" || path = "." || path = "/" || Sys.file_exists path then ()
  else begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let objects_dir t = Filename.concat t.dir "objects"
let tmp_dir t = Filename.concat t.dir "tmp"
let journal_path t = Filename.concat t.dir "journal"

(* Only hex keys reach us, but refuse anything path-unsafe outright. *)
let check_key key =
  if
    String.length key < 2
    || String.exists (fun c -> not ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) key
  then invalid_arg (Printf.sprintf "Store: malformed key %S" key)

let entry_path t key =
  check_key key;
  Filename.concat
    (Filename.concat (objects_dir t) (String.sub key 0 2))
    (key ^ ".json")

let open_ ?(create = true) dir =
  let t =
    { dir; mu = Mutex.create (); hits = 0; misses = 0; corrupt = 0; commits = 0; evicted = 0 }
  in
  if create then begin
    mkdir_p (objects_dir t);
    mkdir_p (tmp_dir t)
  end;
  t

let dir t = t.dir

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* "jumprep-store 1 LEN MD5HEX\nPAYLOAD" *)
let encode payload =
  Printf.sprintf "%s %d %s\n%s" magic (String.length payload)
    (Digest.to_hex (Digest.string payload))
    payload

let decode raw =
  match String.index_opt raw '\n' with
  | None -> Error "no header line"
  | Some nl -> (
    let header = String.sub raw 0 nl in
    match String.split_on_char ' ' header with
    | [ "jumprep-store"; "1"; len; md5 ] -> (
      match int_of_string_opt len with
      | None -> Error "malformed length"
      | Some len ->
        let have = String.length raw - nl - 1 in
        if have <> len then
          Error (Printf.sprintf "payload truncated (%d of %d bytes)" have len)
        else
          let payload = String.sub raw (nl + 1) len in
          if Digest.to_hex (Digest.string payload) <> md5 then
            Error "payload digest mismatch (bit flip?)"
          else
            Result.map_error
              (fun e -> "unparsable payload: " ^ e)
              (Json.parse payload))
    | _ -> Error "bad magic")

let short key = if String.length key > 12 then String.sub key 0 12 else key

let corrupt_diag key msg =
  Diag.make ~severity:Diag.Warn Diag.Store_corrupt ~func:"" ~pass:"store"
    (Printf.sprintf "entry %s: %s; recomputing" (short key) msg)

let find t key =
  let path = entry_path t key in
  if not (Sys.file_exists path) then begin
    locked t (fun () -> t.misses <- t.misses + 1);
    Miss
  end
  else
    match read_file path with
    | exception _ ->
      locked t (fun () -> t.corrupt <- t.corrupt + 1);
      Corrupt (corrupt_diag key "unreadable")
    | raw -> (
      match decode raw with
      | Ok json ->
        locked t (fun () -> t.hits <- t.hits + 1);
        Hit json
      | Error msg ->
        locked t (fun () -> t.corrupt <- t.corrupt + 1);
        Corrupt (corrupt_diag key msg))

let note_corrupt t key msg =
  locked t (fun () ->
      t.hits <- t.hits - 1;
      t.corrupt <- t.corrupt + 1);
  corrupt_diag key msg

(* One O_APPEND write per line: atomic enough for concurrent workers
   appending to the same journal. *)
let journal_append t line =
  let fd =
    Unix.openfile (journal_path t) [ O_WRONLY; O_CREAT; O_APPEND ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let b = Bytes.of_string (line ^ "\n") in
      ignore (Unix.write fd b 0 (Bytes.length b)))

let lease t key =
  check_key key;
  journal_append t ("start " ^ key)

let commit t ~key json =
  let path = entry_path t key in
  mkdir_p (Filename.dirname path);
  let staged =
    Filename.concat (tmp_dir t)
      (Printf.sprintf "%s.%d.tmp" key (Unix.getpid ()))
  in
  let oc = open_out_bin staged in
  (try output_string oc (encode (Json.to_string json))
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc;
  Unix.rename staged path;
  journal_append t ("done " ^ key);
  locked t (fun () -> t.commits <- t.commits + 1)

let pending t =
  match read_file (journal_path t) with
  | exception _ -> []
  | raw ->
    let started = Hashtbl.create 64 in
    let order = ref [] in
    String.split_on_char '\n' raw
    |> List.iter (fun line ->
           match String.index_opt line ' ' with
           | None -> ()
           | Some sp -> (
             let verb = String.sub line 0 sp in
             let key = String.sub line (sp + 1) (String.length line - sp - 1) in
             match verb with
             | "start" ->
               if not (Hashtbl.mem started key) then begin
                 Hashtbl.replace started key true;
                 order := key :: !order
               end
             | "done" -> Hashtbl.replace started key false
             | _ -> ()));
    List.rev !order
    |> List.filter (fun k -> try Hashtbl.find started k with Not_found -> false)

let iter_entries t f =
  let odir = objects_dir t in
  if Sys.file_exists odir then
    Array.iter
      (fun shard ->
        let sdir = Filename.concat odir shard in
        if Sys.is_directory sdir then
          Array.iter
            (fun name ->
              if Filename.check_suffix name ".json" then
                f (Filename.concat sdir name))
            (Sys.readdir sdir))
      (Sys.readdir odir)

let disk_usage t =
  let n = ref 0 and bytes = ref 0 in
  iter_entries t (fun path ->
      incr n;
      bytes := !bytes + (try (Unix.stat path).st_size with _ -> 0));
  (!n, !bytes)

let stats t =
  locked t (fun () ->
      [
        ("store.hits", t.hits);
        ("store.misses", t.misses);
        ("store.corrupt", t.corrupt);
        ("store.commits", t.commits);
        ("store.evicted", t.evicted);
      ])

let gc ?max_entries t =
  (* Staged strays: anything in tmp/ is a write that never committed. *)
  let tmp_removed = ref 0 in
  let tdir = tmp_dir t in
  if Sys.file_exists tdir then
    Array.iter
      (fun name ->
        (try Sys.remove (Filename.concat tdir name) with _ -> ());
        incr tmp_removed)
      (Sys.readdir tdir);
  (* Journal compaction: keep only the still-pending leases. *)
  let still = pending t in
  let jp = journal_path t in
  if Sys.file_exists jp then begin
    let oc = open_out_bin (jp ^ ".gc") in
    List.iter (fun k -> output_string oc ("start " ^ k ^ "\n")) still;
    close_out oc;
    Unix.rename (jp ^ ".gc") jp
  end;
  (* Eviction: oldest mtime first, down to [max_entries]. *)
  let evicted = ref 0 in
  (match max_entries with
  | None -> ()
  | Some keep ->
    let entries = ref [] in
    iter_entries t (fun path ->
        let mtime = try (Unix.stat path).st_mtime with _ -> 0.0 in
        entries := (mtime, path) :: !entries);
    let sorted = List.sort compare !entries in
    let excess = List.length sorted - max 0 keep in
    List.iteri
      (fun i (_, path) ->
        if i < excess then begin
          (try Sys.remove path with _ -> ());
          incr evicted
        end)
      sorted);
  locked t (fun () -> t.evicted <- t.evicted + !evicted);
  (!evicted, !tmp_removed)
