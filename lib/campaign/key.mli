(** Content-addressed result keys.

    A key is the MD5 of a length-prefixed, name-tagged concatenation of
    its components — injective, so two keys collide only when every
    component is byte-identical.  Components always include the compiler
    {!fingerprint} (pass-pipeline signature + [git describe]): a result
    computed by a different compiler can never be reused.

    Keys are pure functions of their inputs — stable across processes,
    restarts and machines — which is what makes the store's entries
    shareable between the parent, its worker processes, and a later
    resumed run (the QCheck suite holds them to it). *)

(** [hex ~kind components] — the 32-char lowercase MD5 hex of the
    injective encoding of [kind] plus the ordered [(name, value)]
    components. *)
val hex : kind:string -> (string * string) list -> string

(** Pass-pipeline signature + memoized [git describe --always --dirty]
    (["no-git"] outside a repository). *)
val fingerprint : unit -> string

(** Key of one sweep measurement: program name/source/input/expectation,
    level, machine, the paper cache-config list, engine, compiler
    fingerprint. *)
val measure :
  engine:Sim.Engine.kind ->
  Programs.Suite.benchmark ->
  Opt.Driver.level ->
  Ir.Machine.t ->
  string

(** Key of one fuzz seed's verdict. *)
val fuzz :
  max_steps:int -> verify:bool -> inject_fault:string option -> int -> string

(** Key of one certify run over a benchmark. *)
val certify :
  level:Opt.Driver.level ->
  machine:Ir.Machine.t ->
  inject_fault:string option ->
  Programs.Suite.benchmark ->
  string
