module Protocol = Daemon.Protocol

exception Worker_failed of string

type wproc = {
  pid : int;
  from_w : Unix.file_descr;  (* parent reads the worker's stdout *)
  to_w : Unix.file_descr;  (* parent writes the worker's stdin *)
  dec : Protocol.decoder;
}

type t = {
  argv : string array;
  mu : Mutex.t;
  cond : Condition.t;
  mutable free : wproc list;
  mutable closed : bool;
  mutable n_kills : int;
  mutable n_respawns : int;
}

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let spawn argv =
  (* to_child: parent writes w1, child reads r1.  from_child: child
     writes w2, parent reads r2.  stderr is inherited so worker
     warnings still reach the operator. *)
  let r1, w1 = Unix.pipe ~cloexec:false () in
  let r2, w2 = Unix.pipe ~cloexec:false () in
  Unix.set_close_on_exec w1;
  Unix.set_close_on_exec r2;
  let pid = Unix.create_process argv.(0) argv r1 w2 Unix.stderr in
  Unix.close r1;
  Unix.close w2;
  { pid; from_w = r2; to_w = w1; dec = Protocol.decoder () }

let create ~workers ~argv =
  if workers < 1 then invalid_arg "Shard.create: workers < 1";
  (* A worker SIGKILLed mid-campaign makes the next send EPIPE; that
     must be an exception on the call path, not process death. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  {
    argv;
    mu = Mutex.create ();
    cond = Condition.create ();
    free = List.init workers (fun _ -> spawn argv);
    closed = false;
    n_kills = 0;
    n_respawns = 0;
  }

let lease t =
  Mutex.lock t.mu;
  let rec wait () =
    if t.closed then begin
      Mutex.unlock t.mu;
      raise (Worker_failed "shard shut down")
    end
    else
      match t.free with
      | w :: rest ->
        t.free <- rest;
        Mutex.unlock t.mu;
        w
      | [] ->
        Condition.wait t.cond t.mu;
        wait ()
  in
  wait ()

let release t w =
  Mutex.lock t.mu;
  t.free <- w :: t.free;
  Condition.signal t.cond;
  Mutex.unlock t.mu

let reap w =
  (try Unix.kill w.pid Sys.sigkill with _ -> ());
  (try ignore (Unix.waitpid [] w.pid) with _ -> ());
  (try Unix.close w.from_w with _ -> ());
  try Unix.close w.to_w with _ -> ()

(* The dead worker's replacement joins the free list: the pool never
   shrinks, and the task the dead worker was leased to retries there. *)
let replace t w =
  reap w;
  let w' = spawn t.argv in
  Mutex.lock t.mu;
  t.n_respawns <- t.n_respawns + 1;
  t.free <- w' :: t.free;
  Condition.signal t.cond;
  Mutex.unlock t.mu

let read_reply w budget =
  let buf = Bytes.create 65536 in
  let rec loop () =
    match Protocol.decoder_next w.dec with
    | Ok (Some payload) -> payload
    | Error e -> raise (Worker_failed ("bad frame from worker: " ^ e))
    | Ok None ->
      (* Poll the budget so a pool deadline-cancel interrupts the wait. *)
      (match budget with Some b -> Telemetry.Budget.check b | None -> ());
      let rs, _, _ = Unix.select [ w.from_w ] [] [] 0.05 in
      if rs = [] then loop ()
      else
        let n = Unix.read w.from_w buf 0 (Bytes.length buf) in
        if n = 0 then raise (Worker_failed "worker closed the pipe (died?)")
        else begin
          Protocol.decoder_feed w.dec (Bytes.sub_string buf 0 n);
          loop ()
        end
  in
  loop ()

let call t ?budget ?(kill = false) payload =
  let w = lease t in
  match
    write_all w.to_w (Protocol.encode_frame payload);
    if kill then begin
      Mutex.lock t.mu;
      t.n_kills <- t.n_kills + 1;
      Mutex.unlock t.mu;
      Unix.kill w.pid Sys.sigkill
    end;
    read_reply w budget
  with
  | reply ->
    release t w;
    reply
  | exception exn ->
    (* Whatever went wrong, the worker's stream can no longer be
       trusted (a late reply would answer the *next* call) — replace
       it wholesale. *)
    replace t w;
    (match exn with
    | Worker_failed _ | Telemetry.Budget.Exhausted _ -> raise exn
    | Unix.Unix_error (e, fn, _) ->
      raise (Worker_failed (Printf.sprintf "%s: %s" fn (Unix.error_message e)))
    | e -> raise (Worker_failed (Printexc.to_string e)))

let kills t =
  Mutex.lock t.mu;
  let n = t.n_kills in
  Mutex.unlock t.mu;
  n

let respawns t =
  Mutex.lock t.mu;
  let n = t.n_respawns in
  Mutex.unlock t.mu;
  n

let shutdown t =
  Mutex.lock t.mu;
  t.closed <- true;
  let ws = t.free in
  t.free <- [];
  Condition.broadcast t.cond;
  Mutex.unlock t.mu;
  List.iter
    (fun w ->
      (try write_all w.to_w (Protocol.encode_frame {|{"op":"quit"}|})
       with _ -> ());
      reap w)
    ws

let serve ~handler () =
  let dec = Protocol.decoder () in
  let buf = Bytes.create 65536 in
  let rec loop () =
    match Protocol.decoder_next dec with
    | Error e ->
      Printf.eprintf "jumprepc: worker: bad frame: %s\n%!" e;
      exit 1
    | Ok (Some payload) -> (
      match handler payload with
      | None -> ()
      | Some reply ->
        write_all Unix.stdout (Protocol.encode_frame reply);
        loop ())
    | Ok None ->
      let n = Unix.read Unix.stdin buf 0 (Bytes.length buf) in
      if n = 0 then () (* parent gone: a clean worker exit *)
      else begin
        Protocol.decoder_feed dec (Bytes.sub_string buf 0 n);
        loop ()
      end
  in
  loop ()
