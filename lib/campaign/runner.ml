module Json = Telemetry.Json
module Diag = Telemetry.Diag
module Log = Telemetry.Log
module Measure = Harness.Measure
module Pool = Harness.Pool

type row = {
  r_program : string;
  r_level : string;
  r_machine : string;
  r_row : string;
  r_output_ok : bool;
  r_timed_out : bool;
  r_counters : (string * int) list;
  r_cached : bool;
}

type summary = {
  total : int;
  hits : int;
  computed : int;
  corrupt : int;
  kills : int;
  respawns : int;
  failures : Measure.task_failure list;
  diags : Diag.t list;
  pool : Pool.stats;
}

(* --- store entries --------------------------------------------------- *)

let counters_json counters =
  Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) counters)

let measure_entry ~key ~engine (b : Programs.Suite.benchmark) level
    (machine : Ir.Machine.t) (m : Measure.t) counters =
  Json.Obj
    [
      ("kind", Json.Str "measure/1");
      ("key", Json.Str key);
      ("program", Json.Str b.name);
      ("level", Json.Str (Opt.Driver.level_name level));
      ("machine", Json.Str machine.Ir.Machine.short);
      ("engine", Json.Str (Sim.Engine.kind_name engine));
      ("output_ok", Json.Bool m.output_ok);
      ("timed_out", Json.Bool m.timed_out);
      (* The rendered BENCH row, replayed verbatim on resume: rendering
         exactly once is what makes resumed output byte-identical. *)
      ("row", Json.Str (Measure.to_json m));
      ("counters", counters_json counters);
    ]

let counters_of_json = function
  | Json.Obj fields ->
    Some
      (List.filter_map
         (fun (n, v) -> match v with Json.Int i -> Some (n, i) | _ -> None)
         fields)
  | _ -> None

let row_of_entry ~cached j =
  let str name = Option.bind (Json.member name j) Json.get_string in
  let boolean name = Option.bind (Json.member name j) Json.get_bool in
  match
    ( str "program",
      str "level",
      str "machine",
      str "row",
      boolean "output_ok",
      boolean "timed_out",
      Option.bind (Json.member "counters" j) counters_of_json )
  with
  | ( Some r_program,
      Some r_level,
      Some r_machine,
      Some r_row,
      Some r_output_ok,
      Some r_timed_out,
      Some r_counters ) ->
    Ok
      {
        r_program;
        r_level;
        r_machine;
        r_row;
        r_output_ok;
        r_timed_out;
        r_counters;
        r_cached = cached;
      }
  | _ -> Error "entry is missing measure fields"

(* --- the worker side ------------------------------------------------- *)

let error_reply msg =
  Json.to_string (Json.Obj [ ("ok", Json.Bool false); ("error", Json.Str msg) ])

let measure_one store ~key ~engine b level machine =
  Store.lease store key;
  let wlog = Log.make Log.Memory in
  let m = Measure.measure_raw ~log:wlog ~engine b level machine in
  let counters = Telemetry.Metrics.counters (Log.metrics wlog) in
  let entry = measure_entry ~key ~engine b level machine m counters in
  Store.commit store ~key entry;
  (m, counters, entry)

let handle_measure store j =
  let str name = Option.bind (Json.member name j) Json.get_string in
  match (str "bench", str "level", str "machine", str "engine", str "key") with
  | Some bench, Some level, Some machine, Some engine, Some key -> (
    match
      ( Programs.Suite.find bench,
        Opt.Driver.level_of_string level,
        (match machine with
        | "risc" -> Some Ir.Machine.risc
        | "cisc" -> Some Ir.Machine.cisc
        | _ -> None),
        Sim.Engine.kind_of_string engine )
    with
    | Some b, Some level, Some mach, Some engine -> (
      match measure_one store ~key ~engine b level mach with
      | exception e -> error_reply (Printexc.to_string e)
      | _, _, entry -> (
        match entry with
        | Json.Obj fields ->
          Json.to_string (Json.Obj (("ok", Json.Bool true) :: fields))
        | _ -> assert false))
    | None, _, _, _ -> error_reply (Printf.sprintf "unknown benchmark %S" bench)
    | _, None, _, _ -> error_reply (Printf.sprintf "unknown level %S" level)
    | _, _, None, _ -> error_reply (Printf.sprintf "unknown machine %S" machine)
    | _, _, _, None -> error_reply (Printf.sprintf "unknown engine %S" engine))
  | _ -> error_reply "measure frame is missing fields"

let worker_handler store payload =
  match Json.parse payload with
  | Error e -> Some (error_reply ("unparsable request: " ^ e))
  | Ok j -> (
    match Option.bind (Json.member "op" j) Json.get_string with
    | Some "quit" -> None
    | Some "measure" -> Some (handle_measure store j)
    | Some op -> Some (error_reply (Printf.sprintf "unknown op %S" op))
    | None -> Some (error_reply "request has no op"))

(* --- the parent side ------------------------------------------------- *)

let row_of_measure ~cached (b : Programs.Suite.benchmark) level
    (machine : Ir.Machine.t) (m : Measure.t) counters =
  ignore b;
  {
    r_program = m.Measure.program;
    r_level = Opt.Driver.level_name level;
    r_machine = machine.Ir.Machine.short;
    r_row = Measure.to_json m;
    r_output_ok = m.Measure.output_ok;
    r_timed_out = m.Measure.timed_out;
    r_counters = counters;
    r_cached = cached;
  }

let failure_of_outcome (b : Programs.Suite.benchmark) level
    (machine : Ir.Machine.t) = function
  | Pool.Done _ -> None
  | Pool.Crashed { exn; backtrace; attempts } ->
    let detail =
      match String.trim backtrace with
      | "" -> Printexc.to_string exn
      | bt -> Printexc.to_string exn ^ " | " ^ bt
    in
    Some
      {
        Measure.f_program = b.name;
        f_level = level;
        f_machine = machine.Ir.Machine.short;
        f_kind = "crashed";
        f_detail = detail;
        f_attempts = attempts;
        f_elapsed = 0.;
      }
  | Pool.Timed_out { elapsed; attempts } ->
    Some
      {
        Measure.f_program = b.name;
        f_level = level;
        f_machine = machine.Ir.Machine.short;
        f_kind = "timed-out";
        f_detail = Printf.sprintf "deadline expired after %.2fs" elapsed;
        f_attempts = attempts;
        f_elapsed = elapsed;
      }

let sweep ~store ~resume ?(workers = 0) ?worker_argv ?(jobs = 1) ?deadline
    ?(retries = 2) ?chaos ?(engine = Sim.Engine.Threaded) ?(log = Log.null)
    tasks =
  let keyed =
    List.map (fun ((b, level, m) as t) -> (t, Key.measure ~engine b level m)) tasks
  in
  let cached : (string, row) Hashtbl.t = Hashtbl.create 128 in
  let diags = ref [] in
  if resume then
    List.iter
      (fun (_, key) ->
        if not (Hashtbl.mem cached key) then
          match Store.find store key with
          | Store.Miss -> ()
          | Store.Corrupt d -> diags := d :: !diags
          | Store.Hit entry -> (
            match row_of_entry ~cached:true entry with
            | Ok row -> Hashtbl.replace cached key row
            | Error msg -> diags := Store.note_corrupt store key msg :: !diags))
      keyed;
  let to_run =
    List.filter (fun (_, key) -> not (Hashtbl.mem cached key)) keyed
  in
  let label ((b, level, m), _) =
    Printf.sprintf "%s/%s/%s" b.Programs.Suite.name
      (Opt.Driver.level_name level)
      m.Ir.Machine.short
  in
  let outcomes, pstats, kills, respawns =
    if to_run = [] then ([], Pool.no_stats, 0, 0)
    else if workers > 0 then begin
      (* Sharded: one supervising domain per worker process; the domain
         task leases a process, ships the request over the pipe, and the
         worker computes *and commits* before replying — a SIGKILL
         between those two loses at most the in-flight task. *)
      let argv =
        match worker_argv with
        | Some a -> a
        | None -> invalid_arg "Runner.sweep: workers > 0 needs worker_argv"
      in
      let sh = Shard.create ~workers ~argv in
      (* Chaos kills are drawn from the same pure (seed, task, attempt)
         schedule as the in-process pool; attempts are counted here
         because the pool does not expose them to the task body. *)
      let amu = Mutex.create () in
      let attempts : (int, int) Hashtbl.t = Hashtbl.create 64 in
      let next_attempt i =
        Mutex.lock amu;
        let a = 1 + Option.value ~default:0 (Hashtbl.find_opt attempts i) in
        Hashtbl.replace attempts i a;
        Mutex.unlock amu;
        a
      in
      let indexed = List.mapi (fun i t -> (i, t)) to_run in
      let outcomes, pstats =
        Pool.supervise ~jobs:workers ?deadline ~retries
          ~label:(fun (_, t) -> label t)
          (fun budget (i, ((b, level, mach), key)) ->
            ignore b;
            let attempt = next_attempt i in
            let kill =
              match chaos with
              | None -> false
              | Some c -> Pool.chaos_fault c ~task:i ~attempt <> None
            in
            let req =
              Json.to_string
                (Json.Obj
                   [
                     ("op", Json.Str "measure");
                     ("bench", Json.Str b.Programs.Suite.name);
                     ("level", Json.Str (Opt.Driver.level_name level));
                     ("machine", Json.Str mach.Ir.Machine.short);
                     ("engine", Json.Str (Sim.Engine.kind_name engine));
                     ("key", Json.Str key);
                   ])
            in
            let reply = Shard.call sh ~budget ~kill req in
            match Json.parse reply with
            | Error e -> raise (Shard.Worker_failed ("unparsable reply: " ^ e))
            | Ok j -> (
              match Option.bind (Json.member "ok" j) Json.get_bool with
              | Some true -> (
                match row_of_entry ~cached:false j with
                | Ok row -> row
                | Error msg -> raise (Shard.Worker_failed msg))
              | _ ->
                let msg =
                  Option.value ~default:"worker error"
                    (Option.bind (Json.member "error" j) Json.get_string)
                in
                raise (Shard.Worker_failed msg)))
          indexed
      in
      let kills = Shard.kills sh and respawns = Shard.respawns sh in
      Shard.shutdown sh;
      (outcomes, pstats, kills, respawns)
    end
    else begin
      let outcomes, pstats =
        Pool.supervise ~jobs ?deadline ~retries ?chaos ~label
          (fun budget ((b, level, mach), key) ->
            Store.lease store key;
            let wlog = Log.make Log.Memory in
            let m =
              Measure.measure_raw ~log:wlog ~budget ~engine b level mach
            in
            let counters = Telemetry.Metrics.counters (Log.metrics wlog) in
            let entry = measure_entry ~key ~engine b level mach m counters in
            Store.commit store ~key entry;
            row_of_measure ~cached:false b level mach m counters)
          to_run
      in
      (outcomes, pstats, 0, 0)
    end
  in
  let computed : (string, row) Hashtbl.t = Hashtbl.create 128 in
  let failures = ref [] in
  List.iter2
    (fun ((b, level, mach), key) outcome ->
      match outcome with
      | Pool.Done row -> Hashtbl.replace computed key row
      | (Pool.Crashed _ | Pool.Timed_out _) as o ->
        Option.iter
          (fun f -> failures := f :: !failures)
          (failure_of_outcome b level mach o))
    to_run outcomes;
  (* Final rows in task order — failed tasks are simply absent, as in a
     cold sweep.  Counter replay: stored and fresh deltas sum in the
     caller's registry; counter addition commutes and the registry
     renders name-sorted, so the counters object matches a cold run. *)
  let rows =
    List.filter_map
      (fun (_, key) ->
        match Hashtbl.find_opt cached key with
        | Some row -> Some row
        | None -> Hashtbl.find_opt computed key)
      keyed
  in
  List.iter
    (fun r ->
      List.iter (fun (n, v) -> Telemetry.Counter.add log n v) r.r_counters)
    rows;
  let hits = List.length (List.filter (fun r -> r.r_cached) rows) in
  ( rows,
    {
      total = List.length keyed;
      hits;
      computed = List.length rows - hits;
      corrupt = List.length !diags;
      kills;
      respawns;
      failures = List.rev !failures;
      diags = List.rev !diags;
      pool = pstats;
    } )
