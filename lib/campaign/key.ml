let hex ~kind components =
  let b = Buffer.create 512 in
  Buffer.add_string b kind;
  Buffer.add_char b '\n';
  List.iter
    (fun (name, v) ->
      (* Length-prefixing both halves makes the encoding injective:
         no choice of names/values can collide with a different list. *)
      Buffer.add_string b (string_of_int (String.length name));
      Buffer.add_char b ':';
      Buffer.add_string b name;
      Buffer.add_string b (string_of_int (String.length v));
      Buffer.add_char b ':';
      Buffer.add_string b v)
    components;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* [git describe] is per-process-invariant; memoize the subprocess. *)
let described = ref None

let git_describe () =
  match !described with
  | Some d -> d
  | None ->
    let d =
      match
        Unix.open_process_in "git describe --always --dirty 2>/dev/null"
      with
      | exception _ -> "no-git"
      | ic -> (
        let line = try String.trim (input_line ic) with End_of_file -> "" in
        match (Unix.close_process_in ic, line) with
        | Unix.WEXITED 0, l when l <> "" -> l
        | _ -> "no-git"
        | exception _ -> "no-git")
    in
    described := Some d;
    d

let fingerprint () = Opt.Driver.pipeline_signature ^ "+" ^ git_describe ()

let cache_signature =
  lazy (String.concat ";" (List.map Icache.config_name Icache.paper_configs))

let measure ~engine (b : Programs.Suite.benchmark) level
    (machine : Ir.Machine.t) =
  hex ~kind:"measure/1"
    [
      ("program", b.name);
      ("source", b.source);
      ("input", b.input);
      ("expected", b.expected_output);
      ("level", Opt.Driver.level_name level);
      ("machine", machine.Ir.Machine.short);
      ("caches", Lazy.force cache_signature);
      ("engine", Sim.Engine.kind_name engine);
      ("compiler", fingerprint ());
    ]

let fuzz ~max_steps ~verify ~inject_fault seed =
  hex ~kind:"fuzz/1"
    [
      ("seed", string_of_int seed);
      ("max_steps", string_of_int max_steps);
      ("verify", string_of_bool verify);
      ("inject_fault", Option.value ~default:"" inject_fault);
      ("compiler", fingerprint ());
    ]

let certify ~level ~(machine : Ir.Machine.t) ~inject_fault
    (b : Programs.Suite.benchmark) =
  hex ~kind:"certify/1"
    [
      ("program", b.name);
      ("source", b.source);
      ("level", Opt.Driver.level_name level);
      ("machine", machine.Ir.Machine.short);
      ("inject_fault", Option.value ~default:"" inject_fault);
      ("compiler", fingerprint ());
    ]
