(** Multi-process worker shards.

    A fixed-size pool of worker {e processes} (spawned from [argv],
    talking the daemon's length-prefixed JSON frame protocol over
    stdin/stdout pipes), leased one call at a time by the parent's
    supervising domains.  The process layer only moves frames; what a
    frame means is the caller's business ({!Runner}).

    Fault discipline mirrors {!Harness.Pool}: a worker that dies
    mid-call (EOF, broken pipe, SIGKILL) is reaped and replaced, and the
    call raises {!Worker_failed} — under [Pool.supervise] that returns
    the leased task to the queue for retry on the fresh worker.  A
    cancelled budget raises [Telemetry.Budget.Exhausted] out of the
    read loop (the worker is replaced too: its late reply must never
    pollute the next call). *)

type t

(** A worker died or answered garbage mid-call; retry on a fresh one. *)
exception Worker_failed of string

(** Spawn [workers] processes running [argv] (resolved via [PATH] when
    [argv.(0)] has no slash).  Ignores [SIGPIPE] process-wide: a dying
    worker must surface as {!Worker_failed}, not kill the campaign. *)
val create : workers:int -> argv:string array -> t

(** [call t payload] — lease a worker, send one frame, await one reply
    frame.  [budget] is polled while waiting (50ms select loop);
    [kill:true] SIGKILLs the worker right after the send — the
    deterministic chaos drill for mid-task worker loss. *)
val call : t -> ?budget:Telemetry.Budget.t -> ?kill:bool -> string -> string

(** Chaos kills delivered / dead workers replaced so far. *)
val kills : t -> int

val respawns : t -> int

(** Send [quit] to the workers and reap them (SIGKILL stragglers). *)
val shutdown : t -> unit

(** Worker side: serve frames from stdin to stdout until EOF.
    [handler] returns the reply payload, or [None] to quit. *)
val serve : handler:(string -> string option) -> unit -> unit
