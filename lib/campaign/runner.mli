(** Crash-resumable measurement campaigns over the {!Store}.

    {!sweep} is the campaign-aware twin of [Harness.Measure.run_many]:
    every (benchmark, level, machine) task is keyed ({!Key.measure}),
    resolved against the store when resuming, and only the delta is
    computed — in-process on a supervised domain pool, or sharded over
    worker {e processes} ({!Shard}).  Workers commit each result to the
    store themselves before replying, so a campaign SIGKILLed at any
    point leaves only complete entries (plus journal leases) behind, and
    a resumed run recomputes exactly the missing tasks.

    Byte-stability: a store entry carries the *rendered* result row
    ([Harness.Measure.to_json], spliced back verbatim) and the
    measurement's telemetry counter deltas.  Rows are emitted in task
    order and counter sums commute, so a resumed, sharded or chaos-ridden
    campaign produces a [BENCH_results.json] byte-identical to a cold
    single-process run — the standing bit-stability contract. *)

type row = {
  r_program : string;
  r_level : string;  (** level name, e.g. ["JUMPS"] *)
  r_machine : string;  (** machine short name *)
  r_row : string;  (** the verbatim [BENCH_results.json] row *)
  r_output_ok : bool;
  r_timed_out : bool;
  r_counters : (string * int) list;  (** this measurement's deltas *)
  r_cached : bool;  (** resolved from the store, not computed *)
}

type summary = {
  total : int;
  hits : int;  (** tasks resolved from the store *)
  computed : int;  (** tasks measured this run *)
  corrupt : int;  (** corrupted entries recomputed *)
  kills : int;  (** chaos worker-process kills delivered *)
  respawns : int;  (** worker processes replaced *)
  failures : Harness.Measure.task_failure list;
      (** tasks with no result after every retry *)
  diags : Telemetry.Diag.t list;  (** [store-corrupt] diagnostics *)
  pool : Harness.Pool.stats;
}

(** The frame handler behind [jumprepc worker] / [bench --worker]:
    serve measure requests, committing each result to [store] before
    replying.  Returns [None] on [{"op":"quit"}]. *)
val worker_handler : Store.t -> string -> string option

(** Run a campaign.  [resume] resolves committed entries before
    dispatch; without it the store is (re)populated but never read.
    [workers > 0] shards over that many worker processes running
    [worker_argv] (required then); [workers = 0] computes in-process on
    [jobs] domains.  [chaos] drills deterministic faults: in-process via
    [Pool.supervise]'s injection, sharded as SIGKILLs of leased workers
    drawn from the same pure (seed, task, attempt) schedule.  Completed
    measurements' counters are replayed into [log] (cached and computed
    alike), so the caller's counters object matches a cold sweep. *)
val sweep :
  store:Store.t ->
  resume:bool ->
  ?workers:int ->
  ?worker_argv:string array ->
  ?jobs:int ->
  ?deadline:float ->
  ?retries:int ->
  ?chaos:Harness.Pool.chaos ->
  ?engine:Sim.Engine.kind ->
  ?log:Telemetry.Log.t ->
  (Programs.Suite.benchmark * Opt.Driver.level * Ir.Machine.t) list ->
  row list * summary
