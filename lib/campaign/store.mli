(** On-disk content-addressed result store.

    Layout under the store directory ([_campaign] by default):

    {v
    objects/<k0k1>/<key>.json   committed entries, sharded by key prefix
    tmp/                        in-progress writes (atomic-rename staging)
    journal                     append-only "start KEY" / "done KEY" lines
    v}

    An entry file is an integrity header —
    ["jumprep-store 1 <payload-bytes> <md5hex>\n"] — followed by the JSON
    payload.  {!commit} stages the bytes in [tmp/] and [rename]s them
    into place, so readers (including concurrent worker processes and a
    campaign resumed after SIGKILL) only ever observe absent or complete
    entries.  A truncated or bit-flipped entry fails the header check and
    surfaces as {!Corrupt} carrying a typed [store-corrupt] diagnostic —
    the caller recomputes; nothing crashes.

    The journal is the in-flight manifest: {!lease} appends
    ["start KEY"] before a computation, {!commit} appends ["done KEY"]
    after the rename.  Entries started but never done mark work that was
    in flight when a campaign died ({!pending}); the journal is advisory
    only — resume correctness rests on the committed objects.

    Handles are mutex-guarded; [O_APPEND] journal writes and
    rename-into-place commits are safe across processes. *)

type t

type lookup =
  | Hit of Telemetry.Json.t
  | Miss
  | Corrupt of Telemetry.Diag.t
      (** entry present but failed integrity/shape checks; recompute *)

val default_dir : string

(** Open (and, by default, create) a store rooted at [dir]. *)
val open_ : ?create:bool -> string -> t

val dir : t -> string

(** Look up a committed entry.  Never raises: unreadable, truncated or
    corrupted entries return {!Corrupt}. *)
val find : t -> string -> lookup

(** Record [key] as in-flight in the journal. *)
val lease : t -> string -> unit

(** Atomically commit an entry: stage in [tmp/], rename into place,
    journal [done].  Overwrites any previous entry for [key]. *)
val commit : t -> key:string -> Telemetry.Json.t -> unit

(** Count a well-formed-but-wrong entry (bad shape after a {!Hit}) as
    corrupt and return the [store-corrupt] diagnostic. *)
val note_corrupt : t -> string -> string -> Telemetry.Diag.t

(** Keys journaled [start] without a matching [done]. *)
val pending : t -> string list

(** [(entries, total payload bytes)] currently committed. *)
val disk_usage : t -> int * int

(** This handle's lookup/commit tallies:
    [store.hits]/[store.misses]/[store.corrupt]/[store.commits]/
    [store.evicted]. *)
val stats : t -> (string * int) list

(** Garbage collection: delete staged [tmp/] strays, compact the journal
    to just the still-pending leases, and — given [max_entries] — evict
    the oldest committed entries beyond that count.  Returns
    [(evicted, tmp_removed)]. *)
val gc : ?max_entries:int -> t -> int * int
