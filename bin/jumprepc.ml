(* jumprepc: command-line driver for the compiler, simulator and
   measurement harness.

     jumprepc compile prog.c -O jumps -m risc --dump-asm
     jumprepc run prog.c -O simple --input data.txt
     jumprepc measure prog.c
     jumprepc bench wc                                                     *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- common arguments --- *)

let level_arg =
  let level_conv =
    Arg.conv
      ( (fun s ->
          match Opt.Driver.level_of_string s with
          | Some l -> Ok l
          | None -> Error (`Msg (Printf.sprintf "unknown level %S" s))),
        fun ppf l -> Format.pp_print_string ppf (Opt.Driver.level_name l) )
  in
  Arg.(
    value
    & opt level_conv Opt.Driver.Jumps
    & info [ "O"; "level" ] ~docv:"LEVEL"
        ~doc:"Optimization level: $(b,simple), $(b,loops) or $(b,jumps).")

let machine_arg =
  let machine_conv =
    Arg.conv
      ( (fun s ->
          match Ir.Machine.of_short s with
          | Some m -> Ok m
          | None -> Error (`Msg (Printf.sprintf "unknown machine %S" s))),
        fun ppf m -> Format.pp_print_string ppf m.Ir.Machine.short )
  in
  Arg.(
    value
    & opt machine_conv Ir.Machine.risc
    & info [ "m"; "machine" ] ~docv:"MACHINE"
        ~doc:"Target machine model: $(b,risc) or $(b,cisc).")

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"C source file.")

(* Surface front-end failures as diagnostics, not OCaml backtraces. *)
let compile_prog level machine path =
  let source = read_file path in
  try Opt.Driver.compile { Opt.Driver.default_options with level } machine source
  with
  | Frontend.Lexer.Error (msg, line) ->
    Printf.eprintf "%s:%d: lexical error: %s\n" path line msg;
    exit 1
  | Frontend.Parser.Error (msg, line) ->
    Printf.eprintf "%s:%d: syntax error: %s\n" path line msg;
    exit 1
  | Frontend.Codegen.Error msg ->
    Printf.eprintf "%s: error: %s\n" path msg;
    exit 1

(* --- compile --- *)

let compile_cmd =
  let dump_rtl =
    Arg.(value & flag & info [ "dump-rtl" ] ~doc:"Print the optimized RTL.")
  in
  let dump_asm =
    Arg.(
      value & flag
      & info [ "dump-asm" ] ~doc:"Print the assembled code with addresses.")
  in
  let run level machine path dump_rtl dump_asm =
    let prog = compile_prog level machine path in
    if dump_rtl || not dump_asm then
      List.iter
        (fun f -> Format.printf "%a@." Flow.Func.pp f)
        prog.Flow.Prog.funcs;
    if dump_asm then begin
      let asm = Sim.Asm.assemble machine prog in
      List.iter (fun f -> Format.printf "%a@." Sim.Asm.pp_afunc f) asm.funcs;
      Printf.printf "\n%d instructions, %d unconditional jumps, %d nops\n"
        (Sim.Asm.static_instrs asm)
        (Sim.Asm.static_ujumps asm)
        (Sim.Asm.static_nops asm)
    end
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a C-subset file and print the result")
    Term.(const run $ level_arg $ machine_arg $ file_arg $ dump_rtl $ dump_asm)

(* --- run --- *)

let run_cmd =
  let input =
    Arg.(
      value
      & opt (some string) None
      & info [ "i"; "input" ] ~docv:"TEXT" ~doc:"Standard input for the program.")
  in
  let input_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "input-file" ] ~docv:"FILE" ~doc:"Read standard input from a file.")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print execution statistics.")
  in
  let trace =
    Arg.(
      value
      & opt (some int) None
      & info [ "trace" ] ~docv:"N"
          ~doc:"Print the first $(docv) executed instructions to stderr.")
  in
  let run level machine path input input_file stats trace =
    let prog = compile_prog level machine path in
    let asm = Sim.Asm.assemble machine prog in
    let input =
      match input_file with
      | Some f -> read_file f
      | None -> Option.value ~default:"" input
    in
    let on_fetch =
      match trace with
      | None -> fun ~addr:_ ~size:_ -> ()
      | Some n ->
        let by_addr = Sim.Asm.addr_index asm in
        let left = ref n in
        fun ~addr ~size:_ ->
          if !left > 0 then begin
            decr left;
            let fname, i = Hashtbl.find by_addr addr in
            Printf.eprintf "%06x %-12s %s\n" addr fname
              (Ir.Rtl.instr_to_string i)
          end
    in
    let res =
      try Sim.Interp.run ~input ~on_fetch asm prog
      with Sim.Interp.Runtime_error msg ->
        Printf.eprintf "%s: runtime error: %s\n" path msg;
        exit 2
    in
    print_string res.output;
    if stats then
      Printf.eprintf
        "exit=%d instructions=%d cond-branches=%d jumps=%d ijumps=%d calls=%d \
         nops=%d\n"
        res.exit_code res.counts.total res.counts.cond_branches
        res.counts.jumps res.counts.ijumps res.counts.calls res.counts.nops;
    exit res.exit_code
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Compile and execute a C-subset file")
    Term.(
      const run $ level_arg $ machine_arg $ file_arg $ input $ input_file
      $ stats $ trace)

(* --- measure --- *)

let measure_cmd =
  let input =
    Arg.(
      value
      & opt (some file) None
      & info [ "input-file" ] ~docv:"FILE" ~doc:"Standard input from a file.")
  in
  let run machine path input_file =
    let source = read_file path in
    let input = Option.map read_file input_file |> Option.value ~default:"" in
    Printf.printf "%-8s %10s %10s %10s %10s\n" "level" "static" "dynamic"
      "dyn-jumps" "nops";
    List.iter
      (fun level ->
        let prog =
          Opt.Driver.compile { Opt.Driver.default_options with level } machine
            source
        in
        let asm = Sim.Asm.assemble machine prog in
        let res =
          try Sim.Interp.run ~input asm prog
          with Sim.Interp.Runtime_error msg ->
            Printf.eprintf "%s: runtime error: %s\n" path msg;
            exit 2
        in
        Printf.printf "%-8s %10d %10d %10d %10d\n"
          (Opt.Driver.level_name level)
          (Sim.Asm.static_instrs asm)
          res.counts.total
          (Sim.Interp.uncond_jumps res.counts)
          res.counts.nops)
      [ Opt.Driver.Simple; Opt.Driver.Loops; Opt.Driver.Jumps ]
  in
  Cmd.v
    (Cmd.info "measure"
       ~doc:"Compare the three optimization levels on one source file")
    Term.(const run $ machine_arg $ file_arg $ input)

(* --- bench: run a bundled benchmark --- *)

let bench_cmd =
  let bench_name =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NAME" ~doc:"Benchmark name (see $(b,list)).")
  in
  let run level machine name =
    match Programs.Suite.find name with
    | None ->
      Printf.eprintf "unknown benchmark %s\n" name;
      exit 1
    | Some b ->
      let m = Harness.Measure.run b level machine in
      Printf.printf
        "%s at %s on %s:\n  static %d instrs (%d jumps, %d nops)\n  dynamic \
         %d instrs (%d jumps, %d nops)\n  output %s\n"
        b.name
        (Opt.Driver.level_name level)
        machine.Ir.Machine.name m.static_instrs m.static_ujumps m.static_nops
        m.dyn_instrs m.dyn_ujumps m.dyn_nops
        (if m.output_ok then "matches the gcc-verified expectation"
         else "MISMATCH")
  in
  Cmd.v
    (Cmd.info "bench" ~doc:"Measure one bundled benchmark")
    Term.(const run $ level_arg $ machine_arg $ bench_name)

let list_cmd =
  let run () =
    List.iter
      (fun (b : Programs.Suite.benchmark) ->
        Printf.printf "%-12s %-10s %s\n" b.name b.clazz b.description)
      Programs.Suite.all
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the bundled benchmark programs")
    Term.(const run $ const ())

let main =
  let doc =
    "an optimizing compiler with generalized code replication (Mueller & \
     Whalley, PLDI 1992)"
  in
  Cmd.group
    (Cmd.info "jumprepc" ~version:"1.0.0" ~doc)
    [ compile_cmd; run_cmd; measure_cmd; bench_cmd; list_cmd ]

let () = exit (Cmd.eval main)
