(* jumprepc: command-line driver for the compiler, simulator and
   measurement harness.

     jumprepc compile prog.c -O jumps -m risc --dump-asm
     jumprepc run prog.c -O simple --input data.txt
     jumprepc measure prog.c
     jumprepc bench wc                                                     *)

open Cmdliner
module Diag = Telemetry.Diag
module Json = Telemetry.Json
module Ops = Daemon.Ops

(* `jumprepc report … | head` and friends: with SIGPIPE ignored, a write
   to a closed pipe surfaces as [Sys_error] (EPIPE), which the typed
   backstop at the bottom turns into a clean io-error diagnostic instead
   of a raw signal death. *)
let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

(* The one JSON emission path: every machine-readable output (compile/run
   --stats-json, measure, lint --json, explain --json, report) assembles a
   Json.t and prints it here.  Legacy string producers (Diag.to_json,
   Harness.Measure.to_json) are spliced with [Json.Raw], which preserves
   their byte format exactly. *)
let print_json j = print_endline (Json.to_string j)

(* Every user-facing failure funnels through a typed diagnostic: one
   "jumprepc: error: [code] ..." line on stderr and a clean nonzero exit,
   never a raw OCaml backtrace. *)
let fail_diag ?(code = 1) d =
  Printf.eprintf "jumprepc: error: %s\n" (Diag.to_string d);
  exit code

let read_file path =
  try
    if Sys.is_directory path then raise (Sys_error (path ^ ": Is a directory"));
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with Sys_error msg ->
    (* [msg] already names the file ("foo.c: No such file or directory"). *)
    fail_diag (Diag.make Diag.Io_error ~func:"" ~pass:"" msg)

(* --- common arguments --- *)

let level_arg =
  let level_conv =
    Arg.conv
      ( (fun s ->
          match Opt.Driver.level_of_string s with
          | Some l -> Ok l
          | None -> Error (`Msg (Printf.sprintf "unknown level %S" s))),
        fun ppf l -> Format.pp_print_string ppf (Opt.Driver.level_name l) )
  in
  Arg.(
    value
    & opt level_conv Opt.Driver.Jumps
    & info [ "O"; "level" ] ~docv:"LEVEL"
        ~doc:"Optimization level: $(b,simple), $(b,loops) or $(b,jumps).")

let machine_arg =
  let machine_conv =
    Arg.conv
      ( (fun s ->
          match Ir.Machine.of_short s with
          | Some m -> Ok m
          | None -> Error (`Msg (Printf.sprintf "unknown machine %S" s))),
        fun ppf m -> Format.pp_print_string ppf m.Ir.Machine.short )
  in
  Arg.(
    value
    & opt machine_conv Ir.Machine.risc
    & info [ "m"; "machine" ] ~docv:"MACHINE"
        ~doc:"Target machine model: $(b,risc) or $(b,cisc).")

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"C source file.")

let engine_arg =
  let engine_conv =
    Arg.conv
      ( (fun s ->
          match Sim.Engine.kind_of_string s with
          | Some k -> Ok k
          | None -> Error (`Msg (Printf.sprintf "unknown engine %S" s))),
        fun ppf k -> Format.pp_print_string ppf (Sim.Engine.kind_name k) )
  in
  Arg.(
    value
    & opt engine_conv Sim.Engine.Threaded
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Execution engine: $(b,threaded) (closure chains with superblock \
           fusion, the default), $(b,decoded) (pre-decoded array \
           interpreter) or $(b,reference) (the re-resolving oracle).  All \
           three are observationally equivalent; only speed differs.")

(* --- telemetry arguments (shared by compile/run/measure/bench) --- *)

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace-passes" ]
        ~doc:
          "Emit the structured optimization event log as JSONL: one event \
           per pass (with instruction/block/jump deltas and timing), per \
           replication decision, per fixpoint iteration and per register \
           spill.  Written to stderr unless $(b,--trace-out) names a file.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "trace-out" ] ~docv:"FILE"
        ~doc:"Write the JSONL event trace to $(docv) (implies \
              $(b,--trace-passes)).")

let stats_json_arg =
  Arg.(
    value & flag
    & info [ "stats-json" ]
        ~doc:"Print a machine-readable JSON stats object on stdout.")

(* --- robustness arguments (shared by compile/run/measure/fuzz) --- *)

let verify_arg =
  Arg.(
    value & flag
    & info [ "verify-passes" ]
        ~doc:
          "Expensive per-pass verification: dominance-based def-before-use \
           checking, program-level label uniqueness, and a differential \
           execution oracle that re-runs small functions after every \
           changing pass.  Cheap structural checks are always on.")

let strict_arg =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:
          "Exit with status 3 if any pass was quarantined (the default is \
           to warn, compile from the rolled-back IR, and exit 0).")

let inject_fault_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "inject-fault" ] ~docv:"PASS[:MODE]"
        ~doc:
          "Testing only: corrupt the named pass's output to exercise the \
           detection paths.  Modes: $(b,dangling-jump) (ill-formed IR, \
           caught by the verifier — the default), $(b,flip-branch) and \
           $(b,drop-store) (well-formed miscompilations, caught by the \
           static certifier under $(b,--certify) or by the execution \
           oracle under $(b,--verify-passes)).")

let certify_arg =
  Arg.(
    value & flag
    & info [ "certify" ]
        ~doc:
          "Static translation validation: after every changing pass, try \
           to prove the output simulates the input.  A refutation \
           quarantines the pass and rolls the function back with a \
           $(b,certify-refuted) diagnostic carrying the counterexample \
           path; uncertifiable passes warn.  See also the $(b,certify) \
           subcommand for per-pass verdict reports.")

(* Shared by fuzz and the bench drivers: deterministic worker-level fault
   injection against the pool supervisor. *)
let chaos_conv =
  Arg.conv
    ( (fun s ->
        match Harness.Pool.chaos_of_string s with
        | Ok c -> Ok c
        | Error e -> Error (`Msg e)),
      fun ppf (c : Harness.Pool.chaos) ->
        Format.fprintf ppf "crash:%g,hang:%g,alloc:%g,seed:%d" c.crash c.hang
          c.alloc c.chaos_seed )

let chaos_arg =
  Arg.(
    value
    & opt (some chaos_conv) None
    & info [ "chaos" ] ~docv:"SPEC"
        ~doc:
          "Testing only: inject deterministic worker faults to drill the \
           pool supervisor.  $(docv) is a comma-separated list of \
           $(b,crash), $(b,hang) and $(b,alloc), each optionally \
           $(b,:RATE) (default 0.1), plus $(b,seed:N) — e.g. \
           $(b,crash:0.2,hang:0.05,seed:7).  Faults are a pure function \
           of (seed, task, attempt), so completed results are identical \
           to an undisturbed run.")

let report_diags diags =
  List.iter
    (fun d ->
      Printf.eprintf "jumprepc: %s: %s\n"
        (match d.Telemetry.Diag.severity with
        | Telemetry.Diag.Warn -> "warning"
        | Telemetry.Diag.Err -> "error")
        (Telemetry.Diag.to_string d))
    (List.rev !diags)

(* [--strict]: quarantines and other pipeline errors become exit 3. *)
let strict_exit strict diags =
  if strict && Telemetry.Diag.has_errors !diags then exit 3

let make_opts ?(verify = false) ?(certify = false) ?inject_fault ?budget level
    =
  {
    Opt.Driver.default_options with
    level;
    verify_passes = verify;
    certify;
    inject_fault;
    budget;
  }

(* --- budget arguments (compile/run) --- *)

let wall_budget_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "wall-budget" ] ~docv:"SECS"
        ~doc:
          "Wall-clock budget for the invocation.  The replication passes \
           poll it; when it expires, the affected function degrades to the \
           next-cheaper level (JUMPS to LOOPS to SIMPLE) with a \
           $(b,budget-exhausted) warning instead of aborting.  Under \
           $(b,run), execution polls it too and exits 124 on expiry.")

let growth_budget_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "growth-budget" ] ~docv:"PCT"
        ~doc:
          "Cap replication code growth at $(docv) percent of each \
           function's input size (0 forbids growth; the paper's worst \
           observed case is about 60).  Exceeding it degrades the function \
           to the next-cheaper level with a $(b,budget-exhausted) warning.")

let make_budget wall growth =
  match wall, growth with
  | None, None -> None
  | deadline, growth -> Some (Harness.Budget.make ?deadline ?growth ())

(* The log selected by the trace flags, and the flush/close to run last. *)
let make_log trace trace_out =
  match trace, trace_out with
  | false, None -> (Telemetry.Log.null, fun () -> ())
  | _, Some path ->
    let oc = open_out path in
    (Telemetry.Log.make (Telemetry.Log.Jsonl oc), fun () -> close_out oc)
  | true, None ->
    (Telemetry.Log.make (Telemetry.Log.Jsonl stderr), fun () -> flush stderr)

(* A failed shared operation ({!Daemon.Ops}): the CLI maps it straight to
   its typed-diagnostic death, the daemon to a wire error code. *)
let fail_op (f : Ops.failure) = fail_diag ~code:f.exit_code f.diag

(* Surface front-end failures as typed diagnostics with a file:line
   position, not OCaml backtraces.  The mapping lives in [Ops] so the
   daemon reports the same diagnostics. *)
let compile_source ?log ?diags opts machine ~path source =
  match Ops.compile_source ?log ?diags opts machine ~path source with
  | Ok prog -> prog
  | Error f -> fail_op f

let compile_prog ?log ?diags opts machine path =
  compile_source ?log ?diags opts machine ~path (read_file path)

(* --- compile --- *)

let compile_cmd =
  let dump_rtl =
    Arg.(value & flag & info [ "dump-rtl" ] ~doc:"Print the optimized RTL.")
  in
  let dump_asm =
    Arg.(
      value & flag
      & info [ "dump-asm" ] ~doc:"Print the assembled code with addresses.")
  in
  let run level machine path dump_rtl dump_asm trace trace_out stats_json
      verify certify strict inject_fault wall_budget growth_budget =
    let log, finish = make_log trace trace_out in
    let diags = ref [] in
    let budget = make_budget wall_budget growth_budget in
    let prog =
      compile_prog ~log ~diags
        (make_opts ~verify ~certify ?inject_fault ?budget level)
        machine path
    in
    if dump_rtl || not (dump_asm || stats_json) then
      List.iter
        (fun f -> Format.printf "%a@." Flow.Func.pp f)
        prog.Flow.Prog.funcs;
    if dump_asm then begin
      let asm = Sim.Asm.assemble machine prog in
      List.iter (fun f -> Format.printf "%a@." Sim.Asm.pp_afunc f) asm.funcs;
      Printf.printf
        "\n%d instructions, %d unconditional jumps, %d nops, %d code bytes\n"
        (Sim.Asm.static_instrs asm)
        (Sim.Asm.static_ujumps asm)
        (Sim.Asm.static_nops asm)
        (Sim.Asm.code_bytes asm);
      (* Displacement summary, when the pass attached plans (CISC). *)
      let plans =
        List.filter_map Flow.Func.encoding prog.Flow.Prog.funcs
      in
      if plans <> [] then begin
        let sum f = List.fold_left (fun n p -> n + f p) 0 plans in
        Printf.printf
          "displacement: %d short, %d word, %d long (%d bytes, fixed %d)\n"
          (sum (fun p -> p.Ir.Encode.shorts))
          (sum (fun p -> p.Ir.Encode.words))
          (sum (fun p -> p.Ir.Encode.longs))
          (sum (fun p -> p.Ir.Encode.total))
          (sum (fun p -> p.Ir.Encode.fixed_total))
      end
    end;
    if stats_json then
      print_json (Ops.compile_stats ~level ~machine prog);
    report_diags diags;
    finish ();
    strict_exit strict diags
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a C-subset file and print the result")
    Term.(
      const run $ level_arg $ machine_arg $ file_arg $ dump_rtl $ dump_asm
      $ trace_arg $ trace_out_arg $ stats_json_arg $ verify_arg $ certify_arg
      $ strict_arg $ inject_fault_arg $ wall_budget_arg $ growth_budget_arg)

(* --- run --- *)

let run_cmd =
  let input =
    Arg.(
      value
      & opt (some string) None
      & info [ "i"; "input" ] ~docv:"TEXT" ~doc:"Standard input for the program.")
  in
  let input_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "input-file" ] ~docv:"FILE" ~doc:"Read standard input from a file.")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print execution statistics.")
  in
  let trace =
    Arg.(
      value
      & opt (some int) None
      & info [ "trace" ] ~docv:"N"
          ~doc:"Print the first $(docv) executed instructions to stderr.")
  in
  let max_steps =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-steps" ] ~docv:"N"
          ~doc:
            "Abort execution after $(docv) instructions; exhausting the \
             budget is reported as a timeout (exit 124), not a runtime \
             error.")
  in
  let run level machine path input input_file stats trace max_steps
      trace_passes trace_out stats_json verify certify strict inject_fault
      wall_budget growth_budget engine =
    let log, finish = make_log trace_passes trace_out in
    let diags = ref [] in
    let budget = make_budget wall_budget growth_budget in
    let prog =
      compile_prog ~log ~diags
        (make_opts ~verify ~certify ?inject_fault ?budget level)
        machine path
    in
    let asm = Sim.Asm.assemble machine prog in
    let input =
      match input_file with
      | Some f -> read_file f
      | None -> Option.value ~default:"" input
    in
    let on_fetch =
      match trace with
      | None -> fun ~addr:_ ~size:_ -> ()
      | Some n ->
        let by_addr = Sim.Asm.addr_index asm in
        let left = ref n in
        fun ~addr ~size:_ ->
          if !left > 0 then begin
            decr left;
            let fname, i = Hashtbl.find by_addr addr in
            Printf.eprintf "%06x %-12s %s\n" addr fname
              (Ir.Rtl.instr_to_string i)
          end
    in
    let res =
      let exec = Sim.Engine.select engine in
      try exec ~input ~on_fetch ~log ?max_steps ?budget asm prog with
      | Sim.Interp.Runtime_error msg ->
        Printf.eprintf "%s: runtime error: %s\n" path msg;
        exit 2
      | Harness.Budget.Exhausted r ->
        Printf.eprintf "%s: %s budget exhausted during execution\n" path
          (Harness.Budget.reason_name r);
        exit 124
    in
    print_string res.output;
    if res.timed_out then
      Printf.eprintf "%s: timeout: step limit exhausted after %d instructions\n"
        path res.counts.total;
    if stats then
      Printf.eprintf
        "exit=%d instructions=%d cond-branches=%d jumps=%d ijumps=%d calls=%d \
         nops=%d\n"
        res.exit_code res.counts.total res.counts.cond_branches
        res.counts.jumps res.counts.ijumps res.counts.calls res.counts.nops;
    if stats_json then
      print_json
        (Json.Obj
           [
             ("level", Json.Str (Opt.Driver.level_name level));
             ("machine", Json.Str machine.Ir.Machine.short);
             ("exit", Json.Int res.exit_code);
             ("dyn_instrs", Json.Int res.counts.total);
             ("cond_branches", Json.Int res.counts.cond_branches);
             ("jumps", Json.Int res.counts.jumps);
             ("ijumps", Json.Int res.counts.ijumps);
             ("calls", Json.Int res.counts.calls);
             ("rets", Json.Int res.counts.rets);
             ("nops", Json.Int res.counts.nops);
             ("loads", Json.Int res.counts.loads);
             ("stores", Json.Int res.counts.stores);
             ("static_instrs", Json.Int (Sim.Asm.static_instrs asm));
             ("static_ujumps", Json.Int (Sim.Asm.static_ujumps asm));
             ("static_nops", Json.Int (Sim.Asm.static_nops asm));
           ]);
    report_diags diags;
    finish ();
    strict_exit strict diags;
    exit res.exit_code
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Compile and execute a C-subset file")
    Term.(
      const run $ level_arg $ machine_arg $ file_arg $ input $ input_file
      $ stats $ trace $ max_steps $ trace_arg $ trace_out_arg $ stats_json_arg
      $ verify_arg $ certify_arg $ strict_arg $ inject_fault_arg
      $ wall_budget_arg $ growth_budget_arg $ engine_arg)

(* --- measure --- *)

let measure_cmd =
  let input =
    Arg.(
      value
      & opt (some file) None
      & info [ "input-file" ] ~docv:"FILE" ~doc:"Standard input from a file.")
  in
  (* Mean miss ratio over the eight paper cache configurations: the one
     cache column of the comparison table. *)
  let mean_miss (m : Harness.Measure.t) =
    let ratios =
      List.map (fun (c : Harness.Measure.cache_stats) -> c.miss_ratio) m.caches
    in
    100.0
    *. (List.fold_left ( +. ) 0.0 ratios /. float_of_int (List.length ratios))
  in
  let run machine path input_file trace trace_out stats_json verify engine =
    let source = read_file path in
    let input = Option.map read_file input_file |> Option.value ~default:"" in
    let log, finish = make_log trace trace_out in
    let rows =
      match
        Ops.measure_rows ~log ~verify ~engine ~path
          ~name:(Filename.basename path) ~source ~input machine
      with
      | Ok rows -> rows
      | Error (f : Ops.failure) when f.exit_code = 2 ->
        (* A simulated-program fault keeps its bare one-line rendering
           (no "jumprepc: error:" prefix), as it always had. *)
        Printf.eprintf "%s\n" f.diag.Diag.message;
        exit 2
      | Error f -> fail_op f
    in
    if stats_json then print_json (Ops.measure_json rows)
    else begin
      Printf.printf "%-8s %10s %10s %10s %10s %8s  %s\n" "level" "static"
        "dynamic" "dyn-jumps" "nops" "miss%" "status";
      List.iter
        (fun (m : Harness.Measure.t) ->
          Printf.printf "%-8s %10d %10d %10d %10d %8.2f  %s\n"
            (Opt.Driver.level_name m.level)
            m.static_instrs m.dyn_instrs m.dyn_ujumps m.dyn_nops (mean_miss m)
            (if m.timed_out then "TIMEOUT"
             else if m.output_ok then "ok"
             else "MISMATCH"))
        rows
    end;
    finish ();
    if List.exists (fun (m : Harness.Measure.t) -> m.timed_out) rows
    then begin
      Printf.eprintf "%s: step limit exhausted at some optimization level\n"
        path;
      exit 1
    end;
    if List.exists (fun (m : Harness.Measure.t) -> not m.output_ok) rows
    then begin
      Printf.eprintf "%s: output differs between optimization levels\n" path;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "measure"
       ~doc:"Compare the three optimization levels on one source file")
    Term.(
      const run $ machine_arg $ file_arg $ input $ trace_arg $ trace_out_arg
      $ stats_json_arg $ verify_arg $ engine_arg)

(* --- bench: run a bundled benchmark --- *)

let bench_cmd =
  let bench_name =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NAME" ~doc:"Benchmark name (see $(b,list)).")
  in
  let run level machine name trace trace_out stats_json verify engine =
    match Programs.Suite.find name with
    | None ->
      Printf.eprintf "unknown benchmark %s\n" name;
      exit 1
    | Some b ->
      let log, finish = make_log trace trace_out in
      let opts = if verify then Some (make_opts ~verify level) else None in
      let m = Harness.Measure.run ?opts ~log ~engine b level machine in
      if stats_json then print_endline (Harness.Measure.to_json m)
      else begin
        Printf.printf
          "%s at %s on %s:\n  static %d instrs (%d jumps, %d nops, %d bytes)\n\
          \  dynamic %d instrs (%d jumps, %d nops)\n  output %s\n"
          b.name
          (Opt.Driver.level_name level)
          machine.Ir.Machine.name m.static_instrs m.static_ujumps m.static_nops
          m.code_bytes m.dyn_instrs m.dyn_ujumps m.dyn_nops
          (if m.timed_out then "TIMEOUT (step limit exhausted)"
           else if m.output_ok then "matches the gcc-verified expectation"
           else "MISMATCH");
        List.iter
          (fun (c : Harness.Measure.cache_stats) ->
            Printf.printf "  cache %-16s miss ratio %.4f  fetch cost %d\n"
              (Icache.config_name c.config)
              c.miss_ratio c.fetch_cost)
          m.caches
      end;
      finish ();
      if not m.output_ok then exit 1
  in
  Cmd.v
    (Cmd.info "bench" ~doc:"Measure one bundled benchmark")
    Term.(
      const run $ level_arg $ machine_arg $ bench_name $ trace_arg
      $ trace_out_arg $ stats_json_arg $ verify_arg $ engine_arg)

(* --- lint: static-analysis findings over the compiled RTL --- *)

let lint_cmd =
  let targets =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"TARGET"
          ~doc:"A C source file or a bundled benchmark name (see $(b,list)).")
  in
  let benches =
    Arg.(
      value & flag
      & info [ "benches" ] ~doc:"Lint every bundled benchmark as well.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Machine-readable output: a JSON array with one object per \
             target, each carrying its findings as diagnostic objects.")
  in
  let run level machine targets benches json strict =
    let targets =
      targets
      @ (if benches then
           List.map (fun (b : Programs.Suite.benchmark) -> b.name)
             Programs.Suite.all
         else [])
    in
    if targets = [] then begin
      Printf.eprintf
        "jumprepc: lint: no targets (name files or benchmarks, or pass \
         --benches)\n";
      exit 2
    end;
    let source_of t =
      if Sys.file_exists t then read_file t
      else
        match Programs.Suite.find t with
        | Some b -> b.source
        | None ->
          Printf.eprintf
            "jumprepc: lint: %s is neither a file nor a bundled benchmark\n" t;
          exit 2
    in
    let all_diags = ref [] in
    let reports =
      List.map
        (fun t ->
          match Ops.lint_findings ~level ~machine ~path:t (source_of t) with
          | Error f -> fail_op f
          | Ok findings ->
            all_diags := !all_diags @ findings;
            (t, findings))
        targets
    in
    if json then print_json (Ops.lint_json reports)
    else
      List.iter
        (fun (t, findings) ->
          let s = Lint.summarize findings in
          if findings = [] then Printf.printf "%s: clean\n" t
          else begin
            Printf.printf "%s: %d error%s, %d warning%s\n" t s.Lint.errors
              (if s.Lint.errors = 1 then "" else "s")
              s.Lint.warnings
              (if s.Lint.warnings = 1 then "" else "s");
            List.iter
              (fun d ->
                Printf.printf "  %s: %s\n"
                  (match d.Telemetry.Diag.severity with
                  | Telemetry.Diag.Warn -> "warning"
                  | Telemetry.Diag.Err -> "error")
                  (Telemetry.Diag.to_string d))
              findings
          end)
        reports;
    strict_exit strict all_diags
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static-analysis report over the compiled (pre-allocation) RTL: \
          uninitialized virtual-register reads, dead stores, statically \
          decidable branches, jump chains, unreachable blocks, and the \
          per-jump replication outlook (wholesale loop copies, code-growth \
          estimates, residual jumps)")
    Term.(
      const run $ level_arg $ machine_arg $ targets $ benches $ json
      $ strict_arg)

(* --- campaign store plumbing (fuzz/certify/serve; the bench driver has
   its own copy of the flags) --- *)

let store_arg =
  Arg.(
    value & opt string ""
    & info [ "store" ] ~docv:"DIR"
        ~doc:
          "Content-addressed result store directory: completed results \
           are committed there, and $(b,--resume) replays them so a \
           killed campaign recomputes only the missing delta.")

let resume_arg =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Resolve tasks against the store ($(b,--store)) before \
           computing anything; a corrupted entry is recomputed after a \
           $(b,store-corrupt) warning, never trusted.")

let warn_diag d =
  Printf.eprintf "jumprepc: warning: %s\n" (Telemetry.Diag.to_string d)

(* --- certify: per-pass translation-validation verdicts --- *)

let certify_cmd =
  let targets =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"TARGET"
          ~doc:"A C source file or a bundled benchmark name (see $(b,list)).")
  in
  let benches =
    Arg.(
      value & flag
      & info [ "benches" ] ~doc:"Certify every bundled benchmark as well.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Machine-readable output: a JSON array with one object per \
             target, each carrying its per-pass verdicts (with reasons \
             and counterexample paths) and summary counts.")
  in
  let run level machine targets benches json inject_fault store resume =
    if resume && store = "" then begin
      Printf.eprintf "jumprepc: certify: --resume requires --store DIR\n";
      exit 2
    end;
    let targets =
      targets
      @ (if benches then
           List.map (fun (b : Programs.Suite.benchmark) -> b.name)
             Programs.Suite.all
         else [])
    in
    if targets = [] then begin
      Printf.eprintf
        "jumprepc: certify: no targets (name files or benchmarks, or pass \
         --benches)\n";
      exit 2
    end;
    let source_of t =
      if Sys.file_exists t then read_file t
      else
        match Programs.Suite.find t with
        | Some b -> b.source
        | None ->
          Printf.eprintf
            "jumprepc: certify: %s is neither a file nor a bundled benchmark\n"
            t;
          exit 2
    in
    let st = if store = "" then None else Some (Campaign.Store.open_ store) in
    (* Render one target's report to its cacheable form: the stdout text
       block, the --json array element, the stderr diagnostic lines and
       the exit verdict — everything a resumed run must replay
       byte-for-byte. *)
    let render t verdicts diags =
      let buf = Buffer.create 256 in
      let certified, unknown, refuted = Ops.certify_summary verdicts in
      Buffer.add_string buf
        (Printf.sprintf "%s: %d certified, %d unknown, %d refuted\n" t
           certified unknown refuted);
      List.iter
        (fun (r : Tv.record) ->
          match r.Tv.verdict with
          | Tv.Certified -> ()
          | Tv.Unknown { reason; timeout } ->
            Buffer.add_string buf
              (Printf.sprintf "  %s/%s: unknown%s: %s\n" r.Tv.vfunc r.Tv.vpass
                 (if timeout then " (timeout)" else "")
                 reason)
          | Tv.Refuted { reason; path } ->
            Buffer.add_string buf
              (Printf.sprintf "  %s/%s: REFUTED: %s\n    path: %s\n" r.Tv.vfunc
                 r.Tv.vpass reason
                 (String.concat " -> " path)))
        verdicts;
      let anyref =
        List.exists
          (fun (r : Tv.record) ->
            match r.Tv.verdict with Tv.Refuted _ -> true | _ -> false)
          verdicts
      in
      let stderr_lines =
        List.map
          (fun d ->
            Printf.sprintf "jumprepc: %s: %s"
              (match d.Telemetry.Diag.severity with
              | Telemetry.Diag.Warn -> "warning"
              | Telemetry.Diag.Err -> "error")
              (Telemetry.Diag.to_string d))
          diags
      in
      ( Buffer.contents buf,
        Json.to_string (Ops.certify_json ~target:t ~level ~machine verdicts),
        anyref,
        stderr_lines )
    in
    let n_cached = ref 0 and n_computed = ref 0 in
    let reports =
      List.map
        (fun t ->
          let key =
            (* Only bundled benchmarks are cacheable: a file target's
               bytes are not part of {!Campaign.Key.certify}. *)
            match st with
            | Some _ when not (Sys.file_exists t) ->
              Option.map
                (Campaign.Key.certify ~level ~machine ~inject_fault)
                (Programs.Suite.find t)
            | _ -> None
          in
          let compute () =
            incr n_computed;
            match
              Ops.certify_report ?inject_fault ~level ~machine ~path:t
                (source_of t)
            with
            | Error f -> fail_op f
            | Ok (verdicts, diags) -> render t verdicts diags
          in
          let compute_and_commit sth key =
            let ((text, jsonel, anyref, lines) as r) = compute () in
            Campaign.Store.lease sth key;
            Campaign.Store.commit sth ~key
              (Json.Obj
                 [
                   ("kind", Json.Str "certify/1");
                   ("target", Json.Str t);
                   ("text", Json.Str text);
                   ("json", Json.Str jsonel);
                   ("refuted", Json.Bool anyref);
                   ( "stderr",
                     Json.Arr (List.map (fun l -> Json.Str l) lines) );
                 ]);
            r
          in
          match (st, key) with
          | None, _ | _, None -> compute ()
          | Some sth, Some key ->
            if not resume then compute_and_commit sth key
            else (
              match Campaign.Store.find sth key with
              | Campaign.Store.Miss -> compute_and_commit sth key
              | Campaign.Store.Corrupt d ->
                warn_diag d;
                compute_and_commit sth key
              | Campaign.Store.Hit e -> (
                let fstr n = Option.bind (Json.member n e) Json.get_string in
                let lines =
                  Option.map
                    (List.filter_map Json.get_string)
                    (Option.bind (Json.member "stderr" e) Json.to_list)
                in
                match
                  ( fstr "text",
                    fstr "json",
                    Option.bind (Json.member "refuted" e) Json.get_bool,
                    lines )
                with
                | Some text, Some jsonel, Some anyref, Some lines ->
                  incr n_cached;
                  (text, jsonel, anyref, lines)
                | _ ->
                  warn_diag
                    (Campaign.Store.note_corrupt sth key
                       "entry is missing certify fields");
                  compute_and_commit sth key)))
        targets
    in
    if json then
      print_json
        (Json.Arr (List.map (fun (_, j, _, _) -> Json.Raw j) reports))
    else List.iter (fun (text, _, _, _) -> print_string text) reports;
    (* Pipeline diagnostics (quarantines, warns) go to stderr as usual —
       cached targets replay the lines they produced when computed. *)
    List.iter
      (fun (_, _, _, lines) ->
        List.iter (fun l -> Printf.eprintf "%s\n" l) lines)
      reports;
    if st <> None then
      Printf.eprintf
        "jumprepc: certify campaign: %d targets, %d cached, %d computed\n"
        (List.length targets) !n_cached !n_computed;
    if List.exists (fun (_, _, anyref, _) -> anyref) reports then exit 1
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:
         "Statically validate the optimizer on the given targets: after \
          every changing pass, prove the output simulates the input \
          (certified), or report a counterexample path (refuted, exit 1), \
          or conservatively give up (unknown).  No execution involved; \
          pair with $(b,--inject-fault PASS:flip-branch) to watch a \
          miscompilation get caught")
    Term.(
      const run $ level_arg $ machine_arg $ targets $ benches $ json
      $ inject_fault_arg $ store_arg $ resume_arg)

(* --- explain: per-function replication report --- *)

let explain_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Machine-readable output: one JSON object per function with the \
             replication count and the remaining jumps as diagnostic \
             objects.")
  in
  let run level machine path json =
    (* Trace the whole compilation in memory, then audit what is left
       (shared with the daemon's explain handler via {!Ops}). *)
    let prog, events =
      match Ops.explain_report ~level ~machine ~path (read_file path) with
      | Ok r -> r
      | Error f -> fail_op f
    in
    if json then begin
      print_json (Ops.explain_json prog events);
      exit 0
    end;
    let total_applied = ref 0 and total_remaining = ref 0 in
    List.iter
      (fun f ->
        let fname = Flow.Func.name f in
        Printf.printf "function %s:\n" fname;
        let applied =
          List.filter_map
            (function
              | Telemetry.Log.Replication_applied
                  { func; jump_from; jump_to; mode; seq; cost; loop_completed }
                when String.equal func fname ->
                Some (jump_from, jump_to, mode, seq, cost, loop_completed)
              | _ -> None)
            events
        in
        if applied = [] then print_endline "  no jumps replicated"
        else begin
          Printf.printf "  replicated during compilation (%d):\n"
            (List.length applied);
          List.iter
            (fun (jump_from, jump_to, mode, seq, cost, loop_completed) ->
              incr total_applied;
              Printf.printf "    %s -> %s: %s copy of %d block%s (%d RTLs)%s\n"
                jump_from jump_to mode (List.length seq)
                (if List.length seq = 1 then "" else "s")
                cost
                (if loop_completed then " [loop completed]" else ""))
            applied
        end;
        (match Replication.Jumps.explain f with
        | [] -> print_endline "  remaining unconditional jumps: none"
        | remaining ->
          Printf.printf "  remaining unconditional jumps (%d):\n"
            (List.length remaining);
          List.iter
            (fun ((from_l, to_l), decision) ->
              incr total_remaining;
              Printf.printf "    %s -> %s: %s\n"
                (Ir.Label.to_string from_l)
                (Ir.Label.to_string to_l)
                (Replication.Jumps.decision_to_string decision))
            remaining))
      prog.Flow.Prog.funcs;
    Printf.printf "total: %d replicated, %d remaining\n" !total_applied
      !total_remaining
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Audit replication decisions: for every unconditional jump, which \
          shortest-path sequence replaced it, or the concrete reason none \
          could")
    Term.(const run $ level_arg $ machine_arg $ file_arg $ json)

(* --- fuzz: differential fuzzing with automatic delta reduction --- *)

let fuzz_cmd =
  let seeds =
    Arg.(
      value & opt int 100
      & info [ "seeds" ] ~docv:"N" ~doc:"Number of random programs to try.")
  in
  let start =
    Arg.(
      value & opt int 0
      & info [ "start" ] ~docv:"N"
          ~doc:"First seed (campaigns are deterministic per seed).")
  in
  let out_dir =
    Arg.(
      value
      & opt string "fuzz-failures"
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Directory for reduced reproducers (created if missing).")
  in
  let max_steps =
    Arg.(
      value
      & opt int 3_000_000
      & info [ "max-steps" ] ~docv:"N"
          ~doc:
            "Per-run instruction budget; exhausting it counts as a timeout \
             failure.")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "quiet" ] ~doc:"No per-seed progress on stderr.")
  in
  let jobs =
    Arg.(
      value
      & opt int (Harness.Pool.default_jobs ())
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for the campaign (default \\$JUMPREP_JOBS or 1). \
             Results are identical at any job count.")
  in
  let run seeds start out_dir max_steps quiet jobs verify inject_fault chaos
      store resume =
    if resume && store = "" then begin
      Printf.eprintf "jumprepc: fuzz: --resume requires --store DIR\n";
      exit 2
    end;
    let on_seed seed outcome =
      if not quiet then
        match outcome with
        | None -> ()
        | Some (f : Harness.Fuzz.failure) ->
          Printf.eprintf "seed %d: %s at %s: %s\n%!" seed
            (Harness.Fuzz.kind_name f.kind)
            f.config f.detail
    in
    let seed_ids = List.init seeds (fun i -> start + i) in
    let st = if store = "" then None else Some (Campaign.Store.open_ store) in
    let key_of seed =
      Campaign.Key.fuzz ~max_steps ~verify ~inject_fault seed
    in
    (* Resume: replay completed verdicts from the store (a cached failure
       keeps its reduced reproducer); only the delta is fuzzed.  Seeds
       aborted by chaos were never committed, so they rerun. *)
    let cached = Hashtbl.create 16 in
    let to_run =
      match st with
      | Some st when resume ->
        List.filter
          (fun seed ->
            let key = key_of seed in
            match Campaign.Store.find st key with
            | Campaign.Store.Miss -> true
            | Campaign.Store.Corrupt d ->
              warn_diag d;
              true
            | Campaign.Store.Hit e -> (
              let fstr n = Option.bind (Json.member n e) Json.get_string in
              match Option.bind (Json.member "failed" e) Json.get_bool with
              | Some false ->
                Hashtbl.replace cached seed None;
                false
              | Some true -> (
                match
                  (fstr "fkind", fstr "config", fstr "reproducer")
                with
                | Some k, Some c, Some r ->
                  Hashtbl.replace cached seed (Some (k, c, r));
                  false
                | _ ->
                  warn_diag
                    (Campaign.Store.note_corrupt st key
                       "entry is missing fuzz verdict fields");
                  true)
              | None ->
                warn_diag
                  (Campaign.Store.note_corrupt st key
                     "entry is missing fuzz verdict fields");
                true))
          seed_ids
      | _ -> seed_ids
    in
    let stats =
      Harness.Fuzz.campaign ~max_steps ~verify ?inject_fault ~out_dir ~start
        ~on_seed ~jobs:(max 1 jobs) ?chaos ~seed_list:to_run ~seeds ()
    in
    (* Commit every seed that reached a verdict; chaos-aborted seeds have
       no verdict to replay and stay uncached. *)
    (match st with
    | None -> ()
    | Some st ->
      let failed_tbl = Hashtbl.create 16 in
      List.iter
        (fun (seed, (f : Harness.Fuzz.failure), path) ->
          Hashtbl.replace failed_tbl seed (f, path))
        stats.failures;
      let aborted_tbl = Hashtbl.create 16 in
      List.iter
        (fun (seed, _) -> Hashtbl.replace aborted_tbl seed ())
        stats.aborted;
      List.iter
        (fun seed ->
          if not (Hashtbl.mem aborted_tbl seed) then begin
            let key = key_of seed in
            let entry =
              match Hashtbl.find_opt failed_tbl seed with
              | Some ((f : Harness.Fuzz.failure), path) ->
                Json.Obj
                  [
                    ("kind", Json.Str "fuzz/1");
                    ("seed", Json.Int seed);
                    ("failed", Json.Bool true);
                    ("fkind", Json.Str (Harness.Fuzz.kind_name f.kind));
                    ("config", Json.Str f.config);
                    ("detail", Json.Str f.detail);
                    ("reproducer", Json.Str (read_file path));
                  ]
              | None ->
                Json.Obj
                  [
                    ("kind", Json.Str "fuzz/1");
                    ("seed", Json.Int seed);
                    ("failed", Json.Bool false);
                  ]
            in
            Campaign.Store.lease st key;
            Campaign.Store.commit st ~key entry
          end)
        to_run);
    (* Cached failures: the reproducer file is part of the verdict, so
       rewrite it, then report cached and fresh failures in seed order. *)
    let cached_failures =
      Hashtbl.fold
        (fun seed v acc ->
          match v with
          | None -> acc
          | Some (k, c, repro) ->
            if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
            let path =
              Filename.concat out_dir (Printf.sprintf "seed-%d.c" seed)
            in
            let oc = open_out path in
            output_string oc repro;
            close_out oc;
            (seed, k, c, path) :: acc)
        cached []
    in
    let all_failures =
      List.sort compare
        (cached_failures
        @ List.map
            (fun (seed, (f : Harness.Fuzz.failure), path) ->
              (seed, Harness.Fuzz.kind_name f.kind, f.config, path))
            stats.failures)
    in
    List.iter
      (fun (seed, kind, config, path) ->
        Printf.printf "seed %d: %s at %s, reduced reproducer: %s\n" seed kind
          config path)
      all_failures;
    List.iter
      (fun (seed, detail) ->
        Printf.printf "seed %d: no verdict, task %s\n" seed detail)
      stats.aborted;
    if st <> None then
      Printf.eprintf "jumprepc: fuzz campaign: %d seeds, %d cached, %d computed\n"
        (List.length seed_ids) (Hashtbl.length cached) stats.seeds_run;
    Printf.printf "fuzz: %d seeds, %d failures%s\n"
      (Hashtbl.length cached + stats.seeds_run)
      (List.length all_failures)
      (if chaos = None then ""
       else
         Printf.sprintf
           ", %d aborted (chaos: %d faults injected, %d retries, %d respawns)"
           (List.length stats.aborted)
           (Harness.Pool.injected stats.pool)
           stats.pool.Harness.Pool.retried stats.pool.Harness.Pool.respawned);
    if all_failures <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differentially fuzz the compiler: random C-subset programs across \
          every (level, machine) configuration against the SIMPLE/cisc \
          reference, with failing programs delta-reduced to minimal \
          reproducers")
    Term.(
      const run $ seeds $ start $ out_dir $ max_steps $ quiet $ jobs
      $ verify_arg $ inject_fault_arg $ chaos_arg $ store_arg $ resume_arg)

(* --- serve / client: the compilation-as-a-service daemon --- *)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Unix-domain socket path.  Mind the platform's ~100-byte \
           socket-path limit; a short path under /tmp is safest.")

(* The daemon-side result cache: measure payloads keyed on (source
   bytes, input, machine, compiler fingerprint) in a campaign store.
   The store's bookkeeping is mutex-guarded internally — [rc_measure]
   runs concurrently on the daemon's worker domains. *)
let store_cache dir =
  let st = Campaign.Store.open_ dir in
  {
    Daemon.Server.rc_measure =
      (fun ~source ~input ~machine compute ->
        let key =
          Campaign.Key.hex ~kind:"daemon-measure/1"
            [
              ("source", source);
              ("input", input);
              ("machine", machine);
              ("compiler", Campaign.Key.fingerprint ());
            ]
        in
        let recompute () =
          Campaign.Store.lease st key;
          match compute () with
          | Ok payload ->
            Campaign.Store.commit st ~key
              (Json.Obj
                 [
                   ("kind", Json.Str "daemon-measure/1");
                   ("payload", Json.Str (Json.to_string payload));
                 ]);
            Ok payload
          | Error _ as e -> e
        in
        match Campaign.Store.find st key with
        | Campaign.Store.Hit e -> (
          match Option.bind (Json.member "payload" e) Json.get_string with
          | Some payload -> Ok (Json.Raw payload)
          | None ->
            ignore
              (Campaign.Store.note_corrupt st key
                 "entry is missing the payload field");
            recompute ())
        | Campaign.Store.Miss | Campaign.Store.Corrupt _ -> recompute ());
    rc_stats = (fun () -> Campaign.Store.stats st);
  }

let serve_cmd =
  let jobs =
    (* [None] defers the [default_jobs] env lookup (and its warning on a
       malformed JUMPREP_JOBS) until serve actually runs. *)
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Resident worker domains (default \\$JUMPREP_JOBS or 1).  \
             Workers keep their decode caches warm across requests.")
  in
  let queue_cap =
    Arg.(
      value & opt int 64
      & info [ "queue-cap" ] ~docv:"N"
          ~doc:
            "Admission bound: requests in flight beyond $(docv) are \
             rejected with an explicit $(b,overloaded) error instead of \
             buffered without bound.")
  in
  let drain_deadline =
    Arg.(
      value & opt float 10.0
      & info [ "drain-deadline" ] ~docv:"SECS"
          ~doc:
            "On SIGTERM (or a $(b,drain) request): stop accepting, finish \
             in-flight requests for at most $(docv) seconds, then \
             force-stop.")
  in
  let idle_timeout =
    Arg.(
      value & opt float 30.0
      & info [ "idle-timeout" ] ~docv:"SECS"
          ~doc:
            "Close connections idle (or stuck half-open mid-frame) for \
             $(docv) seconds with no request in flight.")
  in
  let default_deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECS"
          ~doc:
            "Default per-request deadline when a request's QoS names none \
             (cooperative cancel, abandon at 2x).")
  in
  let fuzz_out =
    Arg.(
      value
      & opt string "fuzz-failures"
      & info [ "fuzz-out" ] ~docv:"DIR"
          ~doc:"Reproducer directory for $(b,fuzz) requests.")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "quiet" ] ~doc:"No connection/drain lifecycle lines on stderr.")
  in
  let store_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "Memoize measure payloads in a campaign result store under \
             $(docv): repeated measure requests for identical source \
             bytes are served from disk (surviving daemon restarts), and \
             $(b,status) reports the store's hit/miss/corrupt gauges.")
  in
  let run socket jobs queue_cap drain_deadline idle_timeout default_deadline
      fuzz_out trace_out quiet store_dir =
    let trace =
      Option.map (fun _ -> Telemetry.Trace.create ()) trace_out
    in
    let res =
      Daemon.Server.serve
        {
          Daemon.Server.socket_path = socket;
          jobs =
            (match jobs with
            | Some j -> max 1 j
            | None -> Harness.Pool.default_jobs ());
          queue_cap = max 1 queue_cap;
          drain_deadline;
          idle_timeout;
          default_deadline;
          fuzz_out;
          trace;
          quiet;
          store = Option.map store_cache store_dir;
        }
    in
    (match (trace_out, trace) with
    | Some path, Some tr ->
      let oc = open_out path in
      output_string oc (Json.to_string (Telemetry.Trace.to_json tr));
      output_char oc '\n';
      close_out oc;
      Printf.eprintf "jumprepd: wrote %s\n" path
    | _ -> ());
    if not res.Daemon.Server.clean then exit 1
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve compile/measure/lint/explain/fuzz requests over a \
          Unix-domain socket: bounded admission, per-request QoS \
          (deadline, budgets, retries, chaos) on the supervised worker \
          pool, crash isolation, and graceful deadline-bounded drain on \
          SIGTERM")
    Term.(
      const run $ socket_arg $ jobs $ queue_cap $ drain_deadline
      $ idle_timeout $ default_deadline $ fuzz_out $ trace_out_arg $ quiet
      $ store_dir)

let client_cmd =
  let kind_arg =
    Arg.(
      required
      & pos 0
          (some
             (Arg.enum
                [
                  ("compile", `Compile);
                  ("measure", `Measure);
                  ("lint", `Lint);
                  ("explain", `Explain);
                  ("fuzz", `Fuzz);
                  ("status", `Status);
                  ("ping", `Ping);
                  ("drain", `Drain);
                ]))
          None
      & info [] ~docv:"KIND"
          ~doc:
            "Request kind: $(b,compile), $(b,measure), $(b,lint), \
             $(b,explain), $(b,fuzz), $(b,status), $(b,ping) or \
             $(b,drain).")
  in
  let file_opt =
    Arg.(
      value
      & pos 1 (some file) None
      & info [] ~docv:"FILE"
          ~doc:"C source file (compile/measure/lint/explain kinds).")
  in
  let input_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "input-file" ] ~docv:"FILE"
          ~doc:"Standard input for $(b,measure) runs, from a file.")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECS"
          ~doc:"Per-request deadline (cooperative cancel, abandon at 2x).")
  in
  let retries =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry a crashed or timed-out request up to $(docv) times on \
             the server's deterministic backoff.")
  in
  let worker_chaos =
    Arg.(
      value
      & opt (some chaos_conv) None
      & info [ "worker-chaos" ] ~docv:"SPEC"
          ~doc:
            "Testing only: per-request worker fault injection on the \
             server ($(b,crash)/$(b,hang)/$(b,alloc)[:RATE],seed:N), the \
             pool supervisor's grammar.")
  in
  let conn_chaos =
    let conn_chaos_conv =
      Arg.conv
        ( (fun s ->
            match Daemon.Protocol.conn_chaos_of_string s with
            | Ok c -> Ok c
            | Error e -> Error (`Msg e)),
          fun ppf (c : Daemon.Protocol.conn_chaos) ->
            Format.fprintf ppf "disconnect:%g,slowloris:%g,garbage:%g,seed:%d"
              c.disconnect c.slowloris c.garbage c.conn_seed )
    in
    Arg.(
      value
      & opt (some conn_chaos_conv) None
      & info [ "chaos" ] ~docv:"SPEC"
          ~doc:
            "Testing only: connection-level fault injection — \
             $(b,disconnect), $(b,slowloris) and $(b,garbage), each \
             optionally $(b,:RATE) (default 0.1), plus $(b,seed:N).  \
             Faults are staged on throwaway connections, a pure function \
             of (seed, request index); the real requests run undisturbed, \
             so results are byte-identical to a quiet run.")
  in
  let telemetry =
    Arg.(
      value & flag
      & info [ "telemetry" ]
          ~doc:
            "Stream the request's JSONL event log back over the socket \
             (printed to stderr before the result).")
  in
  let count =
    Arg.(
      value & opt int 1
      & info [ "count" ] ~docv:"N"
          ~doc:"Send the request $(docv) times (load generation).")
  in
  let seeds =
    Arg.(
      value & opt int 10
      & info [ "seeds" ] ~docv:"N" ~doc:"Seeds for $(b,fuzz) requests.")
  in
  let start =
    Arg.(
      value & opt int 0
      & info [ "start" ] ~docv:"N" ~doc:"First seed for $(b,fuzz) requests.")
  in
  let max_steps =
    Arg.(
      value
      & opt int 3_000_000
      & info [ "max-steps" ] ~docv:"N"
          ~doc:"Per-run instruction budget for $(b,fuzz) requests.")
  in
  let run socket level machine kind file input_file deadline wall_budget
      growth_budget retries worker_chaos conn_chaos telemetry count seeds
      start max_steps =
    let source_file what =
      match file with
      | Some f -> (f, read_file f)
      | None ->
        Printf.eprintf "jumprepc: client: %s needs a FILE argument\n" what;
        exit 2
    in
    let req =
      match kind with
      | `Compile ->
        let path, source = source_file "compile" in
        Daemon.Protocol.Compile { path; source; level; machine }
      | `Measure ->
        let path, source = source_file "measure" in
        let input =
          Option.map read_file input_file |> Option.value ~default:""
        in
        Daemon.Protocol.Measure { path; source; input; machine }
      | `Lint ->
        let path, source = source_file "lint" in
        Daemon.Protocol.Lint { path; source; level; machine }
      | `Explain ->
        let path, source = source_file "explain" in
        Daemon.Protocol.Explain { path; source; level; machine }
      | `Fuzz -> Daemon.Protocol.Fuzz { seeds; start; max_steps }
      | `Status -> Daemon.Protocol.Status
      | `Ping -> Daemon.Protocol.Ping
      | `Drain -> Daemon.Protocol.Drain
    in
    let qos =
      {
        Daemon.Protocol.deadline;
        wall_budget;
        growth_budget;
        retries;
        chaos = worker_chaos;
        telemetry;
      }
    in
    match Daemon.Client.connect ?chaos:conn_chaos socket with
    | Error e -> fail_diag (Diag.make Diag.Io_error ~func:"" ~pass:"" e)
    | Ok c ->
      let finish code =
        Daemon.Client.close c;
        if code <> 0 then exit code
      in
      let rec go left =
        if left > 0 then
          match
            Daemon.Client.request c ~qos
              ~on_telemetry:(fun line -> Printf.eprintf "%s\n" line)
              req
          with
          | Ok (payload, _elapsed_ms) ->
            print_endline payload;
            go (left - 1)
          | Error (code, message) ->
            Printf.eprintf "jumprepc: error: %s\n" message;
            finish (Daemon.Client.exit_of_code code)
      in
      go count;
      finish 0
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send requests to a running $(b,jumprepc serve) daemon; result \
          payloads print byte-identically to the corresponding one-shot \
          $(b,jumprepc) --json output")
    Term.(
      const run $ socket_arg $ level_arg $ machine_arg $ kind_arg $ file_opt
      $ input_file $ deadline $ wall_budget_arg $ growth_budget_arg $ retries
      $ worker_chaos $ conn_chaos $ telemetry $ count $ seeds $ start
      $ max_steps)

(* --- report: render the bench sweep's JSON into paper-shaped tables --- *)

let report_cmd =
  let results_arg =
    Arg.(
      value & pos_all file []
      & info [] ~docv:"RESULTS"
          ~doc:
            "A $(b,BENCH_results.json) document (default \
             $(b,BENCH_results.json) in the current directory); with \
             $(b,--compare), exactly two of them.")
  in
  let compare_flag =
    Arg.(
      value & flag
      & info [ "compare" ]
          ~doc:
            "Delta report between two sweeps: $(b,jumprepc report --compare \
             A.json B.json) lists measurements present in only one, rows \
             whose instruction counts changed, and the Table-5 means side \
             by side.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the markdown report to $(docv) instead of stdout.")
  in
  let dat_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dat" ] ~docv:"DIR"
          ~doc:
            "Also write gnuplot-ready tab-separated $(b,.dat) files \
             (per-program instruction changes, per-size cache deltas) into \
             $(docv), created if missing.")
  in
  let events_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "events" ] ~docv:"FILE"
          ~doc:
            "Append an event-count summary of a telemetry JSONL stream \
             (from $(b,--trace-out)) to the report.")
  in
  let title_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "title" ] ~docv:"TITLE"
          ~doc:"Report title (default derives from the input file name).")
  in
  let load path =
    match Report.parse_results (read_file path) with
    | Ok d -> d
    | Error e ->
      fail_diag
        (Diag.make Diag.Io_error ~func:"" ~pass:""
           (Printf.sprintf "%s: %s" path e))
  in
  let emit out text =
    match out with
    | None -> print_string text
    | Some path ->
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      Printf.eprintf "jumprepc: report: wrote %s\n" path
  in
  let run files compare out dat events title =
    if compare then begin
      match files with
      | [ a; b ] ->
        emit out
          (Report.compare_docs ~name_a:a ~name_b:b (load a) (load b))
      | _ ->
        Printf.eprintf
          "jumprepc: report: --compare takes exactly two RESULTS files\n";
        exit 2
    end
    else begin
      let path =
        match files with
        | [] -> "BENCH_results.json"
        | [ p ] -> p
        | _ ->
          Printf.eprintf
            "jumprepc: report: more than one RESULTS file (did you mean \
             --compare?)\n";
          exit 2
      in
      let doc = load path in
      let title =
        Option.value title
          ~default:(Printf.sprintf "Benchmark report (%s)" path)
      in
      let md = Report.render ~title doc in
      let md =
        match events with
        | None -> md
        | Some f -> md ^ Report.summarize_events (read_file f)
      in
      emit out md;
      match dat with
      | None -> ()
      | Some dir ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        List.iter
          (fun (name, contents) ->
            let p = Filename.concat dir name in
            let oc = open_out p in
            output_string oc contents;
            close_out oc;
            Printf.eprintf "jumprepc: report: wrote %s\n" p)
          (Report.dat_files doc)
    end
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Render a bench sweep's BENCH_results.json into the paper-shaped \
          markdown tables (static/dynamic instruction changes, \
          unconditional-jump percentages, cache deltas), gnuplot data \
          files, and sweep-vs-sweep comparisons")
    Term.(
      const run $ results_arg $ compare_flag $ out_arg $ dat_arg $ events_arg
      $ title_arg)

(* --- worker: campaign shard worker process --- *)

let worker_cmd =
  let store =
    Arg.(
      value
      & opt string Campaign.Store.default_dir
      & info [ "store" ] ~docv:"DIR" ~doc:"Result store directory.")
  in
  let run store =
    let st = Campaign.Store.open_ store in
    Campaign.Shard.serve ~handler:(Campaign.Runner.worker_handler st) ()
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:
         "Campaign shard worker (spawned by a sharded $(b,bench) \
          campaign): serve framed measure requests on stdin/stdout, \
          committing each result to the store before replying, so a \
          SIGKILLed campaign loses at most its in-flight task")
    Term.(const run $ store)

(* --- store: campaign result-store inspection and GC --- *)

let store_cmd =
  let action =
    Arg.(
      value
      & pos 0 (Arg.enum [ ("stats", `Stats); ("gc", `Gc) ]) `Stats
      & info [] ~docv:"ACTION" ~doc:"$(b,stats) (the default) or $(b,gc).")
  in
  let dir =
    Arg.(
      value
      & opt string Campaign.Store.default_dir
      & info [ "store" ] ~docv:"DIR" ~doc:"Result store directory.")
  in
  let max_entries =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-entries" ] ~docv:"N"
          ~doc:
            "With $(b,gc): evict the oldest committed entries beyond \
             $(docv) (in addition to the staged-file and journal \
             cleanup gc always performs).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Machine-readable $(b,stats) output.")
  in
  let run action dir max_entries json =
    if not (Sys.file_exists dir) then begin
      Printf.eprintf "jumprepc: store: no store at %s\n" dir;
      exit 2
    end;
    let st = Campaign.Store.open_ ~create:false dir in
    match action with
    | `Stats ->
      let entries, bytes = Campaign.Store.disk_usage st in
      let pending = Campaign.Store.pending st in
      if json then
        print_json
          (Json.Obj
             [
               ("dir", Json.Str dir);
               ("entries", Json.Int entries);
               ("payload_bytes", Json.Int bytes);
               ("pending", Json.Arr (List.map (fun k -> Json.Str k) pending));
             ])
      else begin
        Printf.printf
          "store %s: %d entries, %d payload bytes, %d pending lease%s\n" dir
          entries bytes (List.length pending)
          (if List.length pending = 1 then "" else "s");
        List.iter (fun k -> Printf.printf "  pending: %s\n" k) pending
      end
    | `Gc ->
      let evicted, tmp_removed = Campaign.Store.gc ?max_entries st in
      Printf.printf "store %s: evicted %d entr%s, removed %d staged file%s\n"
        dir evicted
        (if evicted = 1 then "y" else "ies")
        tmp_removed
        (if tmp_removed = 1 then "" else "s")
  in
  Cmd.v
    (Cmd.info "store"
       ~doc:
         "Inspect or garbage-collect a campaign result store: entry and \
          pending-lease counts, staged-file cleanup, journal compaction, \
          and oldest-first eviction down to $(b,--max-entries)")
    Term.(const run $ action $ dir $ max_entries $ json)

let list_cmd =
  let run () =
    List.iter
      (fun (b : Programs.Suite.benchmark) ->
        Printf.printf "%-12s %-10s %s\n" b.name b.clazz b.description)
      Programs.Suite.all
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the bundled benchmark programs")
    Term.(const run $ const ())

let main =
  let doc =
    "an optimizing compiler with generalized code replication (Mueller & \
     Whalley, PLDI 1992)"
  in
  Cmd.group
    (Cmd.info "jumprepc" ~version:"1.0.0" ~doc)
    [
      compile_cmd;
      run_cmd;
      measure_cmd;
      bench_cmd;
      lint_cmd;
      certify_cmd;
      explain_cmd;
      serve_cmd;
      client_cmd;
      report_cmd;
      fuzz_cmd;
      worker_cmd;
      store_cmd;
      list_cmd;
    ]

(* [~catch:false] plus our own backstop: unexpected exceptions still exit
   cleanly with a one-line typed diagnostic instead of a raw backtrace. *)
let () =
  match Cmd.eval ~catch:false main with
  | code -> exit code
  | exception Sys_error msg ->
    (* On EPIPE (e.g. `jumprepc report ... | head`) stdout still holds
       unflushable bytes; point fd 1 at /dev/null so the at_exit flush
       cannot raise a second, unhandled Sys_error over the diagnostic. *)
    (try
       let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
       Unix.dup2 null Unix.stdout;
       Unix.close null
     with _ -> ());
    fail_diag (Diag.make Diag.Io_error ~func:"" ~pass:"" msg)
  | exception Telemetry.Diag.Error d -> fail_diag d
  | exception Harness.Budget.Exhausted r ->
    fail_diag ~code:124
      (Diag.make Diag.Budget_exhausted ~func:"" ~pass:""
         (Printf.sprintf "%s budget exhausted" (Harness.Budget.reason_name r)))
  | exception e ->
    fail_diag ~code:125
      (Diag.make Diag.Internal ~func:"" ~pass:"" (Printexc.to_string e))
