(* The paper's Table 2: an if-then-else followed by a return.  Replication
   copies the join code (here the function epilogue) into the then-branch,
   so the two execution paths return separately and the jump over the else
   part disappears.

     dune exec examples/if_then_else.exe                                  *)

let source =
  {|
int n = 3;

int compute(int i) {
  if (i > 5)
    i = i / n;
  else
    i = i * n;
  return i;
}

int main() {
  int s, k;
  s = 0;
  for (k = 0; k < 10; k++) s = s + compute(k);
  return s;
}
|}

let () =
  let machine = Ir.Machine.cisc in
  let show level =
    let opts = { Opt.Driver.default_options with level } in
    let prog = Opt.Driver.compile opts machine source in
    let f = Option.get (Flow.Prog.find_func prog "compute") in
    Format.printf "=== compute, %s ===@.%a@.@." (Opt.Driver.level_name level)
      Flow.Func.pp f
  in
  show Opt.Driver.Simple;
  show Opt.Driver.Jumps;
  print_endline
    "Under JUMPS both arms of the conditional end in their own epilogue\n\
     (LEAVE; PC=RT;) — the paper's Table 2, where the then-part returns\n\
     through a replicated copy instead of jumping to the join."
