(* EASE-style execution profile: run a bundled benchmark and report where
   the dynamic instructions go — per function and per instruction class —
   and how that distribution shifts under code replication.

     dune exec examples/profile.exe [program]                             *)

let classify (i : Ir.Rtl.instr) =
  match i with
  | Binop ((Mul | Div | Rem), _, _, _) -> "mul/div"
  | Binop ((Shl | Shr), _, _, _) -> "shift"
  | Binop _ | Unop _ -> "alu"
  | Move (Lreg _, (Reg _ | Imm _)) -> "move"
  | Move (Lreg _, Mem _) -> "load"
  | Move (Lmem _, _) -> "store"
  | Lea _ -> "lea"
  | Cmp _ -> "compare"
  | Branch _ -> "branch"
  | Jump _ | Ijump _ -> "jump"
  | Call _ | Ret -> "call/ret"
  | Enter _ | Leave -> "frame"
  | Nop -> "nop"

let profile (b : Programs.Suite.benchmark) level machine =
  let prog =
    Opt.Driver.compile
      { Opt.Driver.default_options with level }
      machine b.source
  in
  let asm = Sim.Asm.assemble machine prog in
  let by_addr = Sim.Asm.addr_index asm in
  let classes = Hashtbl.create 16 in
  let funcs = Hashtbl.create 16 in
  let bump tbl key =
    Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
  in
  let on_fetch ~addr ~size:_ =
    let fname, i = Hashtbl.find by_addr addr in
    bump classes (classify i);
    bump funcs fname
  in
  let res = Sim.Interp.run ~input:b.input ~on_fetch asm prog in
  (res.counts.total, classes, funcs)

let print_table title total tbl =
  Printf.printf "  %s\n" title;
  Hashtbl.fold (fun k v acc -> (v, k) :: acc) tbl []
  |> List.sort compare |> List.rev
  |> List.iter (fun (v, k) ->
         Printf.printf "    %-10s %9d  (%5.1f%%)\n" k v
           (100.0 *. float_of_int v /. float_of_int total))

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "queens" in
  let b =
    match Programs.Suite.find name with
    | Some b -> b
    | None ->
      Printf.eprintf "unknown program %s (try: jumprepc list)\n" name;
      exit 1
  in
  let machine = Ir.Machine.risc in
  Printf.printf "Execution profile of %s on the %s\n\n" b.name
    machine.Ir.Machine.name;
  List.iter
    (fun level ->
      let total, classes, funcs = profile b level machine in
      Printf.printf "%s: %d instructions executed\n"
        (Opt.Driver.level_name level)
        total;
      print_table "by class:" total classes;
      print_table "by function:" total funcs;
      print_newline ())
    [ Opt.Driver.Simple; Opt.Driver.Jumps ];
  print_endline
    "Replication removes the 'jump' row almost entirely; on the RISC part\n\
     of the 'nop' row (unfillable delay slots of removed jumps) goes with\n\
     it."
