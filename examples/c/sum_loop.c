/* Minimal loop: the for's back-jump is the replication target at -O
   loops and above (paper Table 1 shape). */
int main() {
  int i, s;
  s = 0;
  for (i = 0; i < 10; i++) {
    s = s + i;
  }
  putchar('A' + (s % 26));
  putchar('\n');
  return 0;
}
