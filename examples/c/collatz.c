/* Collatz steps for n = 27: an if-then-else inside a while gives the
   compiler both join-point jumps and a loop back-jump to replicate. */
int main() {
  int n, steps;
  n = 27;
  steps = 0;
  while (n != 1) {
    if (n % 2 == 0) {
      n = n / 2;
    } else {
      n = 3 * n + 1;
    }
    steps = steps + 1;
  }
  putchar('0' + steps / 100);
  putchar('0' + steps / 10 % 10);
  putchar('0' + steps % 10);
  putchar('\n');
  return 0;
}
