/* Euclid's algorithm: a loop whose exit test sits at the top, so
   favor-loops replication rotates it. */
int gcd(int a, int b) {
  int t;
  while (b != 0) {
    t = a % b;
    a = b;
    b = t;
  }
  return a;
}

int main() {
  int g;
  g = gcd(1071, 462);
  putchar('0' + g / 10);
  putchar('0' + g % 10);
  putchar('\n');
  return 0;
}
