(* The paper's Table 1: a loop whose exit condition sits in the middle.
   Conventional loop optimization (LOOPS) cannot remove the bottom jump of
   such a loop; generalized replication (JUMPS) replaces it with a copy of
   the test sequence and a reversed branch, saving one unconditional jump
   per iteration.

     dune exec examples/loop_exit_middle.exe                              *)

let source =
  {|
int x[100];
int n = 40;

int main() {
  int i;
  i = 1;
  while (i <= n) {
    x[i - 1] = x[i];
    i = i + 1;
  }
  return 0;
}
|}

let () =
  let machine = Ir.Machine.cisc in
  let show level =
    let opts = { Opt.Driver.default_options with level } in
    let prog = Opt.Driver.compile opts machine source in
    let f = Option.get (Flow.Prog.find_func prog "main") in
    Format.printf "=== %s ===@.%a@.@." (Opt.Driver.level_name level)
      Flow.Func.pp f;
    let asm = Sim.Asm.assemble machine prog in
    let res = Sim.Interp.run asm prog in
    Printf.printf "executed: %d instructions, %d unconditional jumps\n\n"
      res.counts.total
      (Sim.Interp.uncond_jumps res.counts)
  in
  show Opt.Driver.Simple;
  show Opt.Driver.Jumps;
  print_endline
    "In the JUMPS version the loop's closing jump is gone: the replicated\n\
     condition test appears at the loop bottom with its branch reversed,\n\
     exactly as in the paper's Table 1 (label L000 there)."
