(* Quickstart: compile a C-subset program at each optimization level, run
   it on the simulated machines, and watch the unconditional jumps vanish
   under code replication.

     dune exec examples/quickstart.exe                                    *)

let source =
  {|
int a[50];

int main() {
  int i, j, t;
  for (i = 0; i < 50; i++) a[i] = (i * 17 + 3) % 50;
  for (i = 0; i < 49; i++)
    for (j = 0; j < 49 - i; j++)
      if (a[j] > a[j + 1]) { t = a[j]; a[j] = a[j + 1]; a[j + 1] = t; }
  for (i = 0; i < 50; i = i + 10) { putchar('a' + a[i] % 26); }
  putchar('\n');
  return 0;
}
|}

let () =
  print_endline "Compiling a bubble sort at SIMPLE, LOOPS and JUMPS...\n";
  List.iter
    (fun machine ->
      Printf.printf "%s\n" machine.Ir.Machine.name;
      List.iter
        (fun level ->
          let opts = { Opt.Driver.default_options with level } in
          let prog = Opt.Driver.compile opts machine source in
          let asm = Sim.Asm.assemble machine prog in
          let res = Sim.Interp.run asm prog in
          Printf.printf
            "  %-6s  static %4d instrs (%2d jumps)   dynamic %7d instrs (%5d \
             jumps)   output %S\n"
            (Opt.Driver.level_name level)
            (Sim.Asm.static_instrs asm)
            (Sim.Asm.static_ujumps asm)
            res.counts.total
            (Sim.Interp.uncond_jumps res.counts)
            res.output)
        [ Opt.Driver.Simple; Opt.Driver.Loops; Opt.Driver.Jumps ];
      print_newline ())
    [ Ir.Machine.cisc; Ir.Machine.risc ];
  print_endline
    "JUMPS replicates code in place of every unconditional jump: the static\n\
     size grows while the executed instruction count (and every executed\n\
     jump) drops — the paper's headline result."
