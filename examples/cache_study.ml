(* Instruction-cache study (the paper's Section 5.3 in miniature): run one
   benchmark through the direct-mapped cache simulator at every paper
   configuration and compare the three optimization levels.

     dune exec examples/cache_study.exe [program]                         *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "quicksort" in
  let b =
    match Programs.Suite.find name with
    | Some b -> b
    | None ->
      Printf.eprintf "unknown program %s; try one of:\n" name;
      List.iter
        (fun (b : Programs.Suite.benchmark) -> Printf.eprintf "  %s\n" b.name)
        Programs.Suite.all;
      exit 1
  in
  let machine = Ir.Machine.risc in
  Printf.printf "i-cache behavior of %s on the %s\n\n" b.name
    machine.Ir.Machine.name;
  Printf.printf "%-22s %10s %12s %12s\n" "configuration" "level" "miss ratio"
    "fetch cost";
  List.iter
    (fun (config : Icache.config) ->
      List.iter
        (fun level ->
          let m = Harness.Measure.run b level machine in
          let c =
            List.find
              (fun (c : Harness.Measure.cache_stats) -> c.config = config)
              m.caches
          in
          Printf.printf "%-22s %10s %11.3f%% %12d\n"
            (Icache.config_name config)
            (Opt.Driver.level_name level)
            (100.0 *. c.miss_ratio) c.fetch_cost)
        [ Opt.Driver.Simple; Opt.Driver.Loops; Opt.Driver.Jumps ];
      print_newline ())
    Icache.paper_configs;
  print_endline
    "Fetch cost = hits + 10 * misses (the paper's formula).  Note how JUMPS\n\
     can raise the miss ratio on the small caches while still lowering the\n\
     total fetch cost on the larger ones — fewer instructions executed\n\
     outweigh the extra misses (Section 5.3)."
