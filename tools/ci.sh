#!/bin/sh
# Minimal CI: build, formatting check (when ocamlformat is available),
# full test suite (alcotest + qcheck + cram).  Exits nonzero on the
# first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt =="
  dune build @fmt
else
  echo "== skipping @fmt (ocamlformat not installed) =="
fi

echo "== dune runtest =="
dune runtest

echo "CI OK"
