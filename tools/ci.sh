#!/bin/sh
# Minimal CI: build, formatting check (when ocamlformat is available),
# full test suite (alcotest + qcheck + cram).  Exits nonzero on the
# first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt =="
  dune build @fmt
else
  echo "== skipping @fmt (ocamlformat not installed) =="
fi

echo "== dune runtest =="
dune runtest

echo "== fuzz smoke (25 seeds, 2 domains) =="
dune exec bin/jumprepc.exe -- fuzz --seeds 25 -j 2 --quiet --out _build/fuzz-failures

echo "== chaos smoke: crash+hang injection at -j 2, zero lost results =="
dune exec bin/jumprepc.exe -- fuzz --seeds 10 -j 2 --quiet \
  --chaos crash:0.2,seed:9 --out _build/fuzz-chaos
dune exec bench/main.exe -- --json -j 2 --chaos crash:0.1,hang:0.05,seed:11
python3 - << 'EOF'
import json
doc = json.load(open("BENCH_results.json"))
results, failures = doc["results"], doc.get("failures", [])
total = len(results) + len(failures)
assert total == 84, f"lost results: {len(results)} done + {len(failures)} failed != 84"
print(f"chaos sweep accounted for all 84 tasks "
      f"({len(results)} done, {len(failures)} failed)")
EOF

echo "== bench --json sweep (2 domains) vs golden baseline =="
dune exec bench/main.exe -- --json -j 2 > /dev/null
tools/bench_compare.sh BENCH_baseline.json BENCH_results.json

echo "== bechamel smoke (time-bounded) =="
dune exec bench/main.exe -- --bechamel --bechamel-quota 0.05 -t 1 > /dev/null

echo "== lint --strict (examples + bench corpus) =="
for f in examples/c/*.c; do
  dune exec bin/jumprepc.exe -- lint "$f" -O jumps --strict > /dev/null
done
dune exec bin/jumprepc.exe -- lint --benches -O jumps --strict > /dev/null

echo "== verify-passes strict run =="
cat > _build/ci-verify.c <<'EOF'
int main() {
  int i, s;
  s = 0;
  for (i = 0; i < 10; i++) { s += i; }
  putchar(65 + (s & 15));
  putchar(10);
  return 0;
}
EOF
dune exec bin/jumprepc.exe -- run _build/ci-verify.c -O jumps -m cisc --verify-passes --strict > /dev/null
dune exec bin/jumprepc.exe -- run _build/ci-verify.c -O jumps -m risc --verify-passes --strict > /dev/null
dune exec bin/jumprepc.exe -- bench wc -O jumps -m cisc --verify-passes > /dev/null

echo "CI OK"
