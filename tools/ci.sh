#!/bin/sh
# Minimal CI: build, formatting check (when ocamlformat is available),
# full test suite (alcotest + qcheck + cram).  Exits nonzero on the
# first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt =="
  dune build @fmt
else
  echo "== skipping @fmt (ocamlformat not installed) =="
fi

echo "== dune runtest =="
dune runtest

echo "== fuzz smoke (25 seeds, 2 domains) =="
dune exec bin/jumprepc.exe -- fuzz --seeds 25 -j 2 --quiet --out _build/fuzz-failures

echo "== chaos smoke: crash+hang injection at -j 2, zero lost results =="
dune exec bin/jumprepc.exe -- fuzz --seeds 10 -j 2 --quiet \
  --chaos crash:0.2,seed:9 --out _build/fuzz-chaos
dune exec bench/main.exe -- --json -j 2 --chaos crash:0.1,hang:0.05,seed:11 \
  --trace-out _build/trace-chaos.json
python3 - << 'EOF'
import json
doc = json.load(open("BENCH_results.json"))
results, failures = doc["results"], doc.get("failures", [])
total = len(results) + len(failures)
assert total == 114, f"lost results: {len(results)} done + {len(failures)} failed != 114"
print(f"chaos sweep accounted for all 114 tasks "
      f"({len(results)} done, {len(failures)} failed)")
# The chaos sweep's trace must show the supervisor at work: injected
# faults as chaos instants and at least one retry decision on lane 0.
trace = json.load(open("_build/trace-chaos.json"))
evs = trace["traceEvents"]
chaos = [e for e in evs if e.get("cat") == "chaos"]
retries = [e for e in evs if e["name"] == "task-retry"]
assert chaos, "no chaos instants in the chaos sweep's trace"
assert retries, "no task-retry events in the chaos sweep's trace"
assert all(e["tid"] == 0 for e in retries), "retry events must be on lane 0"
print(f"chaos trace: {len(evs)} events, {len(chaos)} chaos instants, "
      f"{len(retries)} retries")
EOF

echo "== bench --json sweep (2 domains) vs golden baseline =="
SWEEP_T0=$(python3 -c 'import time; print(time.time())')
dune exec bench/main.exe -- --json -j 2 > /dev/null
SWEEP_WALL=$(python3 -c "import time; print(round(time.time() - $SWEEP_T0, 3))")
tools/bench_compare.sh BENCH_baseline.json BENCH_results.json

echo "== threaded engine sweep byte-identical at -j 1 and -j 4 =="
dune exec bench/main.exe -- --json -j 1 --engine threaded > /dev/null
cmp BENCH_results.json BENCH_baseline.json
dune exec bench/main.exe -- --json -j 4 --engine threaded > /dev/null
cmp BENCH_results.json BENCH_baseline.json

echo "== campaign: store sweep, kill-and-resume, byte-identity =="
BENCHX=_build/default/bench/main.exe
rm -rf _build/campaign-st1 _build/campaign-st2 _build/campaign-st3

# Cold sharded campaign over 2 worker processes: byte-identical baseline.
"$BENCHX" --json --store _build/campaign-st1 --workers 2 > _build/campaign-cold.log
cmp BENCH_results.json BENCH_baseline.json
grep -q 'campaign: 114 tasks, 0 cached, 114 computed' _build/campaign-cold.log

# Warm rerun: zero recomputes, still byte-identical, measurably faster.
WARM_T0=$(python3 -c 'import time; print(time.time())')
"$BENCHX" --json --store _build/campaign-st1 --resume -j 1 > _build/campaign-warm.log
WARM_WALL=$(python3 -c "import time; print(round(time.time() - $WARM_T0, 3))")
cmp BENCH_results.json BENCH_baseline.json
grep -q 'campaign: 114 tasks, 114 cached, 0 computed' _build/campaign-warm.log
echo "campaign warm rerun: ${WARM_WALL}s (cold sweep: ${SWEEP_WALL}s), 0 recomputes"

# Kill drill: SIGKILL one worker process, then the parent, mid-campaign.
# The resumed run (4 domains, chaos on) recomputes only the delta and the
# bytes still match; a second sharded resume finds nothing left to do.
"$BENCHX" --json --store _build/campaign-st2 --workers 2 \
  > _build/campaign-killed.log 2>&1 &
CPID=$!
sleep 1
WPID=$(pgrep -P "$CPID" 2>/dev/null | head -1 || true)
[ -n "$WPID" ] && kill -KILL "$WPID" 2>/dev/null || true
sleep 0.2
kill -KILL "$CPID" 2>/dev/null || true
wait "$CPID" 2>/dev/null || true
"$BENCHX" --json --store _build/campaign-st2 --resume -j 4 \
  --chaos crash:0.05,seed:3 --retries 4 > _build/campaign-resume.log
cmp BENCH_results.json BENCH_baseline.json
"$BENCHX" --json --store _build/campaign-st2 --resume --workers 2 \
  > _build/campaign-resume2.log
cmp BENCH_results.json BENCH_baseline.json
grep -q ' 114 cached, 0 computed' _build/campaign-resume2.log
echo "campaign: SIGKILL worker+parent, resumed delta-only, bytes identical"

# Sharded chaos: worker-process SIGKILLs drawn from the pure schedule;
# every leased task returns to the queue and completes on a respawn.
"$BENCHX" --json --store _build/campaign-st3 --workers 2 \
  --chaos crash:0.1,seed:7 --retries 4 > _build/campaign-chaos.log
cmp BENCH_results.json BENCH_baseline.json
grep -q 'campaign: 114 tasks, 0 cached, 114 computed' _build/campaign-chaos.log
echo "campaign: sharded chaos kills recovered, bytes identical"

# Store corruption: truncate one committed entry, bit-flip another; the
# resume warns with a typed store-corrupt diagnostic, recomputes exactly
# those two, and the bytes still match.
python3 - << 'EOF'
import glob, os
entries = sorted(glob.glob("_build/campaign-st1/objects/*/*.json"))
assert len(entries) == 114, len(entries)
os.truncate(entries[0], 10)
with open(entries[1], "r+b") as f:
    data = bytearray(f.read())
    data[len(data) // 2] ^= 0x40
    f.seek(0)
    f.write(data)
EOF
"$BENCHX" --json --store _build/campaign-st1 --resume -j 1 \
  > _build/campaign-corrupt.log 2> _build/campaign-corrupt.err
cmp BENCH_results.json BENCH_baseline.json
grep -q 'campaign: 114 tasks, 112 cached, 2 computed, 2 corrupt' _build/campaign-corrupt.log
test "$(grep -c 'store-corrupt' _build/campaign-corrupt.err)" -eq 2
echo "campaign: 2 corrupted entries recomputed behind store-corrupt warnings"

echo "== profiled+traced sweep stays byte-identical to the baseline =="
dune exec bench/main.exe -- --json -j 2 --profile \
  --profile-out _build/profile.json --trace-out _build/trace.json > /dev/null
cmp BENCH_results.json BENCH_baseline.json
python3 - << 'EOF'
import json
# Tiny schema check: the trace must load as trace-event JSON with at
# least one complete span per worker lane, and the profile document must
# carry all three sections.
trace = json.load(open("_build/trace.json"))
assert isinstance(trace["traceEvents"], list) and trace["displayTimeUnit"] == "ms"
spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
for e in spans:
    assert {"name", "ph", "ts", "dur", "pid", "tid"} <= e.keys(), e
lanes = {e["tid"] for e in spans}
assert {1, 2} <= lanes, f"expected spans on worker lanes 1 and 2, got {lanes}"
profile = json.load(open("_build/profile.json"))
assert {"profile", "metrics", "pool"} <= profile.keys()
assert profile["profile"]["passes"], "no (function x pass) profiler rows"
assert profile["profile"]["runs"], "no per-run profiler rows"
assert any(k.startswith("pool.") for k in profile["pool"]), "no pool counters"
print(f"trace: {len(spans)} spans on lanes {sorted(lanes)}; "
      f"profile: {len(profile['profile']['passes'])} pass rows, "
      f"{len(profile['profile']['runs'])} run rows")
EOF

echo "== report: paper tables from the sweep JSON =="
dune exec bin/jumprepc.exe -- report BENCH_results.json \
  --out _build/report.md --dat _build/report-dat
dune exec bin/jumprepc.exe -- report --compare \
  BENCH_baseline.json BENCH_results.json > _build/report-compare.md
grep -q "No measurement changed" _build/report-compare.md
grep -q "Table 5 shape" _build/report.md

echo "== bench trend: two synthetic snapshots + wall-time gate =="
rm -f _build/ci-trend.jsonl
TREND_COMMIT=ci-a TREND_WALL_S="$SWEEP_WALL" \
  tools/bench_compare.sh --trend BENCH_baseline.json _build/ci-trend.jsonl
TREND_COMMIT=ci-b TREND_WALL_S="$SWEEP_WALL" \
  tools/bench_compare.sh --trend BENCH_results.json _build/ci-trend.jsonl
# Re-running at the same commit must be a no-op, not a duplicate row.
TREND_COMMIT=ci-b TREND_WALL_S="$SWEEP_WALL" \
  tools/bench_compare.sh --trend BENCH_results.json _build/ci-trend.jsonl
python3 - << 'EOF'
import json
rows = [json.loads(l) for l in open("_build/ci-trend.jsonl")]
assert [r["commit"] for r in rows] == ["ci-a", "ci-b"], rows
for r in rows:
    assert r["measurements"] == 114 and "risc" in r and "cisc" in r, r
    assert r["engine"] == "threaded", r
    assert "wall_s" in r, r
print("trend file has %d rows (same-commit rerun deduplicated)" % len(rows))
EOF

# Deterministic gate drill on a scratch trend file: three ~10s rows, then
# a 20%-slower row must fail, a 5%-slower row must pass, and --no-gate
# must record the row without failing.
rm -f _build/ci-gate.jsonl
for w in 10.0 10.1 9.9; do
  TREND_COMMIT="ci-w$w" TREND_WALL_S="$w" \
    tools/bench_compare.sh --trend BENCH_results.json _build/ci-gate.jsonl > /dev/null
done
if TREND_COMMIT=ci-slow TREND_WALL_S=12.0 \
     tools/bench_compare.sh --trend BENCH_results.json _build/ci-gate.jsonl \
     > _build/trend-gate.log; then
  echo "trend gate: 20% wall-time regression not caught"; exit 1
fi
grep -q 'wall-time regression' _build/trend-gate.log
TREND_COMMIT=ci-near TREND_WALL_S=10.5 \
  tools/bench_compare.sh --trend BENCH_results.json _build/ci-gate.jsonl > /dev/null
TREND_COMMIT=ci-escape TREND_WALL_S=30.0 \
  tools/bench_compare.sh --trend --no-gate BENCH_results.json _build/ci-gate.jsonl \
  > _build/trend-nogate.log
grep -q 'not failing' _build/trend-nogate.log
echo "trend wall-time gate: regression caught, tolerance and --no-gate honored"

echo "== bechamel smoke (time-bounded) =="
dune exec bench/main.exe -- --bechamel --bechamel-quota 0.05 -t 1 > /dev/null

echo "== lint --strict (examples + bench corpus) =="
for f in examples/c/*.c; do
  dune exec bin/jumprepc.exe -- lint "$f" -O jumps --strict > /dev/null
done
dune exec bin/jumprepc.exe -- lint --benches -O jumps --strict > /dev/null

echo "== examples with bundled inputs reproduce their golden outputs =="
for f in examples/c/*.c; do
  b=$(basename "$f" .c)
  if [ -f "examples/c/$b.expected" ]; then
    if [ -f "examples/c/$b.input" ]; then
      dune exec bin/jumprepc.exe -- run "$f" -O jumps -m risc \
        --input-file "examples/c/$b.input" 2> /dev/null > "_build/golden-$b.out"
    else
      dune exec bin/jumprepc.exe -- run "$f" -O jumps -m risc \
        2> /dev/null > "_build/golden-$b.out"
    fi
    cmp "_build/golden-$b.out" "examples/c/$b.expected"
  fi
done

echo "== certify: static translation validation, all targets x levels =="
for lvl in simple loops jumps; do
  dune exec bin/jumprepc.exe -- certify --benches examples/c/*.c -O "$lvl" \
    > "_build/certify-$lvl.txt" 2> /dev/null
  grep -q ' 0 refuted' "_build/certify-$lvl.txt"
  if grep -v ' 0 refuted' "_build/certify-$lvl.txt" | grep -q 'refuted'; then
    echo "certify: refutations at level $lvl"; exit 1
  fi
done
echo "certify: $(grep -c ' 0 refuted' _build/certify-jumps.txt) targets x 3 levels, zero refutations"

# A deliberately corrupted pass must be statically refuted (exit 1) with
# a counterexample path, and the rolled-back pipeline must stay correct.
if dune exec bin/jumprepc.exe -- certify examples/c/collatz.c -O jumps \
     --inject-fault isel:flip-branch > _build/certify-refute.txt 2> /dev/null; then
  echo "certify: injected flip-branch was not refuted"; exit 1
fi
grep -q 'REFUTED' _build/certify-refute.txt
grep -q 'path: ' _build/certify-refute.txt
echo "certify: injected flip-branch refuted with a counterexample path"

echo "== verify-passes strict run =="
cat > _build/ci-verify.c <<'EOF'
int main() {
  int i, s;
  s = 0;
  for (i = 0; i < 10; i++) { s += i; }
  putchar(65 + (s & 15));
  putchar(10);
  return 0;
}
EOF
dune exec bin/jumprepc.exe -- run _build/ci-verify.c -O jumps -m cisc --verify-passes --strict > /dev/null
dune exec bin/jumprepc.exe -- run _build/ci-verify.c -O jumps -m risc --verify-passes --strict > /dev/null
dune exec bin/jumprepc.exe -- bench wc -O jumps -m cisc --verify-passes > /dev/null

echo "== daemon: concurrent clients byte-identical to one-shot CLI =="
JRC=_build/default/bin/jumprepc.exe
DSOCK="/tmp/jrd-ci-$$.sock"
rm -f "$DSOCK"
rm -rf _build/daemon-ref _build/daemon-out
mkdir -p _build/daemon-ref _build/daemon-out
"$JRC" serve --socket "$DSOCK" -j 2 --quiet > _build/daemon.log 2>&1 &
DPID=$!
for i in $(seq 100); do [ -S "$DSOCK" ] && break; sleep 0.1; done
test -S "$DSOCK"

# One-shot references for every (program x kind).
for f in examples/c/*.c; do
  b=$(basename "$f" .c)
  "$JRC" compile "$f" -O jumps -m risc --stats-json > "_build/daemon-ref/$b.compile"
  "$JRC" measure "$f" -m cisc --stats-json > "_build/daemon-ref/$b.measure"
  "$JRC" lint "$f" -O jumps --json > "_build/daemon-ref/$b.lint"
  "$JRC" explain "$f" -O jumps --json > "_build/daemon-ref/$b.explain"
done

# Four concurrent client processes hammer the daemon over the corpus —
# one quiet lane, one with worker chaos + retries, two with
# connection-level chaos. Every result must be byte-identical to the
# one-shot run above.
daemon_lane() { # lane-name extra-flags...
  lane="$1"; shift
  for f in examples/c/*.c; do
    b=$(basename "$f" .c)
    "$JRC" client --socket "$DSOCK" compile "$f" -O jumps -m risc "$@" \
      > "_build/daemon-out/$lane.$b.compile" 2> "_build/daemon-out/$lane.$b.err"
    "$JRC" client --socket "$DSOCK" measure "$f" -m cisc "$@" \
      > "_build/daemon-out/$lane.$b.measure" 2>> "_build/daemon-out/$lane.$b.err"
    "$JRC" client --socket "$DSOCK" lint "$f" -O jumps "$@" \
      > "_build/daemon-out/$lane.$b.lint" 2>> "_build/daemon-out/$lane.$b.err"
    "$JRC" client --socket "$DSOCK" explain "$f" -O jumps "$@" \
      > "_build/daemon-out/$lane.$b.explain" 2>> "_build/daemon-out/$lane.$b.err"
  done
}
daemon_lane quiet &
L1=$!
daemon_lane wchaos --worker-chaos crash:0.2,seed:4 --retries 8 &
L2=$!
daemon_lane cchaos1 --chaos disconnect:0.3,garbage:0.3,seed:6 &
L3=$!
daemon_lane cchaos2 --chaos slowloris:0.4,seed:8 &
L4=$!
wait $L1; wait $L2; wait $L3; wait $L4
for lane in quiet wchaos cchaos1 cchaos2; do
  for f in examples/c/*.c; do
    b=$(basename "$f" .c)
    for kind in compile measure lint explain; do
      cmp "_build/daemon-ref/$b.$kind" "_build/daemon-out/$lane.$b.$kind"
    done
  done
done
echo "daemon: 4 lanes x $(ls examples/c/*.c | wc -l) programs x 4 kinds byte-identical"

# Telemetry streams back as JSONL on request.
"$JRC" client --socket "$DSOCK" compile examples/c/gcd.c -O jumps --telemetry \
  > /dev/null 2> _build/daemon-telemetry.jsonl
python3 - << 'EOF'
import json
lines = [l for l in open("_build/daemon-telemetry.jsonl") if l.strip()]
assert lines, "telemetry request streamed no events"
for l in lines:
    json.loads(l)
print("daemon telemetry: %d JSONL events streamed" % len(lines))
EOF

# SIGTERM mid-load: a clean, deadline-bounded drain (exit 0, workers
# joined, in-flight work finished and flushed).
for i in 1 2 3 4; do
  "$JRC" client --socket "$DSOCK" measure examples/c/collatz.c -m risc --count 3 \
    > "_build/daemon-out/drain.$i" 2>&1 &
done
sleep 0.3
kill -TERM $DPID
DRAIN_EXIT=0
wait $DPID || DRAIN_EXIT=$?
wait
test "$DRAIN_EXIT" -eq 0
grep -q 'workers joined' _build/daemon.log
grep -q ' 0 abandoned' _build/daemon.log
test ! -e "$DSOCK"
echo "daemon: SIGTERM under load drained cleanly"

echo "CI OK"
