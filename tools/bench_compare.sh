#!/bin/sh
# Compare two BENCH_results.json documents (e.g. a committed golden
# baseline vs a fresh sweep) and fail if any semantic measurement moved:
# static/dynamic instruction counts, cache miss ratios and fetch costs,
# verification verdicts, or the telemetry counter totals.  Performance
# work must keep all of these bit-stable — that is the whole contract of
# the rewrite this script guards.
#
# Usage: tools/bench_compare.sh OLD.json NEW.json

set -eu

if [ $# -ne 2 ]; then
    echo "usage: $0 OLD.json NEW.json" >&2
    exit 2
fi

exec python3 - "$1" "$2" << 'EOF'
import json, sys

old_path, new_path = sys.argv[1], sys.argv[2]
with open(old_path) as f:
    old = json.load(f)
with open(new_path) as f:
    new = json.load(f)

COUNT_FIELDS = [
    "static_instrs", "static_ujumps", "static_nops",
    "dyn_instrs", "dyn_ujumps", "dyn_nops", "dyn_transfers",
    "output_ok", "timed_out",
]

def key(r):
    return (r["program"], r["level"], r["machine"])

bad = 0

def complain(msg):
    global bad
    bad += 1
    print("bench_compare: %s" % msg)

old_results = {key(r): r for r in old.get("results", [])}
new_results = {key(r): r for r in new.get("results", [])}

for k in sorted(old_results.keys() - new_results.keys()):
    complain("measurement %s/%s/%s disappeared" % k)
for k in sorted(new_results.keys() - old_results.keys()):
    complain("measurement %s/%s/%s appeared" % k)

for k in sorted(old_results.keys() & new_results.keys()):
    a, b = old_results[k], new_results[k]
    for field in COUNT_FIELDS:
        if a.get(field) != b.get(field):
            complain("%s/%s/%s: %s changed %r -> %r"
                     % (k + (field, a.get(field), b.get(field))))
    ca = {c["config"]: c for c in a.get("caches", [])}
    cb = {c["config"]: c for c in b.get("caches", [])}
    if ca.keys() != cb.keys():
        complain("%s/%s/%s: cache config set changed" % k)
    for name in sorted(ca.keys() & cb.keys()):
        for field in ("miss_ratio", "fetch_cost"):
            if ca[name].get(field) != cb[name].get(field):
                complain("%s/%s/%s: cache %s %s changed %r -> %r"
                         % (k + (name, field,
                                 ca[name].get(field), cb[name].get(field))))

old_counters = old.get("counters", {})
new_counters = new.get("counters", {})
for name in sorted(old_counters.keys() | new_counters.keys()):
    if old_counters.get(name) != new_counters.get(name):
        complain("counter %s changed %r -> %r"
                 % (name, old_counters.get(name), new_counters.get(name)))

if bad:
    print("bench_compare: %d difference(s) between %s and %s"
          % (bad, old_path, new_path))
    sys.exit(1)
print("bench_compare: %s and %s agree (%d measurements)"
      % (old_path, new_path, len(old_results)))
EOF
