#!/bin/sh
# Compare two BENCH_results.json documents (e.g. a committed golden
# baseline vs a fresh sweep) and fail if any semantic measurement moved:
# static/dynamic instruction counts, cache miss ratios and fetch costs,
# verification verdicts, or the telemetry counter totals.  Performance
# work must keep all of these bit-stable — that is the whole contract of
# the rewrite this script guards.
#
# Usage: tools/bench_compare.sh OLD.json NEW.json
#        tools/bench_compare.sh --trend [--no-gate] RESULTS.json [TREND.jsonl]
#
# --trend appends one JSON line of per-commit aggregates (totals plus the
# Table-5 mean percentage changes per machine) to TREND.jsonl (default
# BENCH_trend.jsonl), building the longitudinal record that
# `jumprepc report` and ad-hoc plotting consume.  The commit id comes
# from git, or from $TREND_COMMIT when set (tests use this to fabricate
# deterministic rows).
#
# When $TREND_WALL_S is set (the sweep's wall-clock seconds, measured by
# the caller), the row also records it and the gate fires: a wall time
# more than 15% over the median of the last three recorded rows fails
# with exit 1, so a perf regression trips CI the commit it lands.
# --no-gate still records the row but never fails — the escape hatch for
# machines with known-unstable timing.

set -eu

if [ "${1:-}" = "--trend" ]; then
    shift
    gate=1
    if [ "${1:-}" = "--no-gate" ]; then
        gate=0
        shift
    fi
    if [ $# -lt 1 ] || [ $# -gt 2 ]; then
        echo "usage: $0 --trend [--no-gate] RESULTS.json [TREND.jsonl]" >&2
        exit 2
    fi
    results="$1"
    trend="${2:-BENCH_trend.jsonl}"
    commit="${TREND_COMMIT:-$(git rev-parse --short HEAD 2>/dev/null || echo unknown)}"
    exec python3 - "$results" "$trend" "$commit" "$gate" << 'EOF'
import json, os, sys, time

results_path, trend_path, commit = sys.argv[1], sys.argv[2], sys.argv[3]
gate = sys.argv[4] == "1"
with open(results_path) as f:
    doc = json.load(f)
results = doc.get("results", [])

def change(now, base):
    return 100.0 * (now - base) / max(1, base)

row = {
    "commit": commit,
    "when": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    # Which execution engine produced the sweep (older documents predate
    # the label and were measured by the decoded interpreter).
    "engine": doc.get("engine", "decoded"),
    "measurements": len(results),
    "failures": len(doc.get("failures", [])),
}
for field in ("static_instrs", "static_ujumps", "dyn_instrs", "dyn_ujumps"):
    row[field] = sum(r[field] for r in results)

wall_s = os.environ.get("TREND_WALL_S")
if wall_s is not None:
    row["wall_s"] = round(float(wall_s), 3)

# Table-5 means: average of per-program percentage changes vs SIMPLE.
by = {(r["program"], r["level"], r["machine"]): r for r in results}
for machine in sorted({r["machine"] for r in results}):
    progs = sorted({r["program"] for r in results if r["machine"] == machine})
    progs = [p for p in progs
             if all((p, lvl, machine) in by for lvl in ("SIMPLE", "LOOPS", "JUMPS"))]
    means = {}
    for lvl_key, lvl in (("loops", "LOOPS"), ("jumps", "JUMPS")):
        for f_key, f in (("static", "static_instrs"), ("dyn", "dyn_instrs")):
            deltas = [change(by[(p, lvl, machine)][f], by[(p, "SIMPLE", machine)][f])
                      for p in progs]
            means["%s_%s_pct" % (f_key, lvl_key)] = (
                round(sum(deltas) / len(deltas), 3) if deltas else 0.0)
    row[machine] = means

# The regression gate compares this sweep's wall time against the median
# of the last three *prior* rows that recorded one.  The row is appended
# either way — a regression should be on the record, not hidden by its
# own failure.
prior = []
try:
    with open(trend_path) as f:
        prior = [json.loads(line) for line in f if line.strip()]
except FileNotFoundError:
    pass

def wall_gate():
    if "wall_s" not in row:
        return None
    history = [r["wall_s"] for r in prior if "wall_s" in r][-3:]
    if not history:
        return None
    median = sorted(history)[len(history) // 2]
    if row["wall_s"] > 1.15 * median:
        return (
            "bench_compare: wall-time regression: %.3fs is %.1f%% over the "
            "median %.3fs of the last %d row(s) of %s (gate: +15%%)"
            % (row["wall_s"], 100.0 * (row["wall_s"] / median - 1.0),
               median, len(history), trend_path))
    print("bench_compare: wall time %.3fs within 15%% of the median %.3fs "
          "of the last %d row(s)" % (row["wall_s"], median, len(history)))
    return None

regression = wall_gate()

# Re-running the bench at the same commit must not grow the trend file:
# if the last row already carries this commit id, skip the append so the
# longitudinal record stays one row per commit.
if prior and prior[-1].get("commit") == commit:
    print("bench_compare: %s already the last row of %s; not appending"
          % (commit, trend_path))
else:
    with open(trend_path, "a") as f:
        f.write(json.dumps(row, sort_keys=True) + "\n")
    print("bench_compare: appended %s (%d measurements) to %s"
          % (commit, len(results), trend_path))

if regression is not None:
    if gate:
        print(regression)
        sys.exit(1)
    print(regression + " [--no-gate: not failing]")
EOF
fi

if [ $# -ne 2 ]; then
    echo "usage: $0 OLD.json NEW.json" >&2
    echo "       $0 --trend RESULTS.json [TREND.jsonl]" >&2
    exit 2
fi

exec python3 - "$1" "$2" << 'EOF'
import json, sys

old_path, new_path = sys.argv[1], sys.argv[2]
with open(old_path) as f:
    old = json.load(f)
with open(new_path) as f:
    new = json.load(f)

COUNT_FIELDS = [
    "static_instrs", "static_ujumps", "static_nops",
    "dyn_instrs", "dyn_ujumps", "dyn_nops", "dyn_transfers",
    "output_ok", "timed_out",
]

def key(r):
    return (r["program"], r["level"], r["machine"])

bad = 0

def complain(msg):
    global bad
    bad += 1
    print("bench_compare: %s" % msg)

old_results = {key(r): r for r in old.get("results", [])}
new_results = {key(r): r for r in new.get("results", [])}

for k in sorted(old_results.keys() - new_results.keys()):
    complain("measurement %s/%s/%s disappeared" % k)
for k in sorted(new_results.keys() - old_results.keys()):
    complain("measurement %s/%s/%s appeared" % k)

for k in sorted(old_results.keys() & new_results.keys()):
    a, b = old_results[k], new_results[k]
    for field in COUNT_FIELDS:
        if a.get(field) != b.get(field):
            complain("%s/%s/%s: %s changed %r -> %r"
                     % (k + (field, a.get(field), b.get(field))))
    ca = {c["config"]: c for c in a.get("caches", [])}
    cb = {c["config"]: c for c in b.get("caches", [])}
    if ca.keys() != cb.keys():
        complain("%s/%s/%s: cache config set changed" % k)
    for name in sorted(ca.keys() & cb.keys()):
        for field in ("miss_ratio", "fetch_cost"):
            if ca[name].get(field) != cb[name].get(field):
                complain("%s/%s/%s: cache %s %s changed %r -> %r"
                         % (k + (name, field,
                                 ca[name].get(field), cb[name].get(field))))

old_counters = old.get("counters", {})
new_counters = new.get("counters", {})
for name in sorted(old_counters.keys() | new_counters.keys()):
    if old_counters.get(name) != new_counters.get(name):
        complain("counter %s changed %r -> %r"
                 % (name, old_counters.get(name), new_counters.get(name)))

if bad:
    print("bench_compare: %d difference(s) between %s and %s"
          % (bad, old_path, new_path))
    sys.exit(1)
print("bench_compare: %s and %s agree (%d measurements)"
      % (old_path, new_path, len(old_results)))
EOF
