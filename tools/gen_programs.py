#!/usr/bin/env python3
"""Generate lib/programs/suite.ml.

Each benchmark below is written in the compiler's C subset (which is plain
C89), compiled with the system gcc (-funsigned-char to match the simulator's
zero-extending byte loads), run on its input, and the captured stdout is
embedded as the expected output. The resulting OCaml module carries
(name, description, source, input, expected_output) for the 14 programs of
the paper's Table 3 plus 3 control-flow-heavy additions (fannkuch, lexer,
rdparse) grown for the translation-validation corpus and 2 arithmetic-heavy
shootout-style kernels (nbody, spectral) in pure integer / fixed-point form
(the compiler has no floating point).

The additions are also emitted as examples/c/<name>.c with their bundled
input (<name>.input) and gcc-captured golden output (<name>.expected), so
the CLI, lint, daemon, and certify CI legs exercise them as source files.
"""

import subprocess, tempfile, os, sys

HELPERS = {
    "putstr": r"""
void putstr(char *s) {
  int i;
  i = 0;
  while (s[i] != 0) { putchar(s[i]); i = i + 1; }
}
""",
    "putnum": r"""
void putnum(int n) {
  char buf[12];
  int i;
  if (n < 0) { putchar('-'); n = -n; }
  i = 0;
  do { buf[i] = '0' + n % 10; n = n / 10; i = i + 1; } while (n > 0);
  while (i > 0) { i = i - 1; putchar(buf[i]); }
}
""",
    "putoct": r"""
void putoct(int n, int w) {
  char buf[12];
  int i;
  i = 0;
  do { buf[i] = '0' + (n & 7); n = n >> 3; i = i + 1; } while (n > 0);
  while (i < w) { buf[i] = '0'; i = i + 1; }
  while (i > 0) { i = i - 1; putchar(buf[i]); }
}
""",
    "readnum": r"""
int readnum() {
  int c, n;
  n = 0;
  c = getchar();
  while (c == ' ' || c == '\n') c = getchar();
  while (c >= '0' && c <= '9') { n = n * 10 + (c - '0'); c = getchar(); }
  return n;
}
""",
}

# ---------------------------------------------------------------- wc
WC = r"""
int main() {
  int c, lines, words, chars, in_word;
  lines = 0; words = 0; chars = 0; in_word = 0;
  while ((c = getchar()) != -1) {
    chars = chars + 1;
    if (c == '\n') lines = lines + 1;
    if (c == ' ' || c == '\n' || c == '\t') in_word = 0;
    else if (in_word == 0) { in_word = 1; words = words + 1; }
  }
  putnum(lines); putchar(' ');
  putnum(words); putchar(' ');
  putnum(chars); putchar('\n');
  return 0;
}
"""

# ---------------------------------------------------------------- bubblesort
BUBBLE = r"""
int a[100];

int main() {
  int i, j, t, n, seed, sum;
  n = 100; seed = 12345;
  for (i = 0; i < n; i++) {
    seed = (seed * 1103 + 12849) % 65536;
    a[i] = seed % 1000;
  }
  for (i = 0; i < n - 1; i++)
    for (j = 0; j < n - 1 - i; j++)
      if (a[j] > a[j + 1]) { t = a[j]; a[j] = a[j + 1]; a[j + 1] = t; }
  sum = 0;
  for (i = 0; i < n; i++) sum = sum + a[i] * (i + 1);
  putnum(sum); putchar('\n');
  for (i = 0; i < 10; i++) { putnum(a[i * 10]); putchar(' '); }
  putchar('\n');
  return 0;
}
"""

# ---------------------------------------------------------------- matmult
MATMULT = r"""
int a[14][14], b[14][14], c[14][14];

int main() {
  int i, j, k, n, sum;
  n = 14;
  for (i = 0; i < n; i++)
    for (j = 0; j < n; j++) {
      a[i][j] = (i * 3 + j * 7) % 11 - 5;
      b[i][j] = (i * 5 + j * 2) % 13 - 6;
    }
  for (i = 0; i < n; i++)
    for (j = 0; j < n; j++) {
      sum = 0;
      for (k = 0; k < n; k++) sum = sum + a[i][k] * b[k][j];
      c[i][j] = sum;
    }
  sum = 0;
  for (i = 0; i < n; i++)
    for (j = 0; j < n; j++) sum = sum + c[i][j] * (i + 2 * j + 1);
  putnum(sum); putchar('\n');
  return 0;
}
"""

# ---------------------------------------------------------------- sieve
SIEVE = r"""
char flags[8191];

int main() {
  int i, k, count, iter;
  count = 0;
  for (iter = 0; iter < 3; iter++) {
    count = 0;
    for (i = 0; i <= 8190; i++) flags[i] = 1;
    for (i = 2; i <= 8190; i++) {
      if (flags[i]) {
        k = i + i;
        while (k <= 8190) { flags[k] = 0; k = k + i; }
        count = count + 1;
      }
    }
  }
  putnum(count); putchar('\n');
  return 0;
}
"""

# ---------------------------------------------------------------- queens
QUEENS = r"""
int cols[8], d1[15], d2[15], count;

void place(int row) {
  int c;
  c = 0;
  while (c < 8) {
    if (cols[c] == 0 && d1[row + c] == 0 && d2[row - c + 7] == 0) {
      if (row == 7) count = count + 1;
      else {
        cols[c] = 1; d1[row + c] = 1; d2[row - c + 7] = 1;
        place(row + 1);
        cols[c] = 0; d1[row + c] = 0; d2[row - c + 7] = 0;
      }
    }
    c = c + 1;
  }
}

int main() {
  count = 0;
  place(0);
  putnum(count); putchar('\n');
  return 0;
}
"""

# ---------------------------------------------------------------- quicksort
QUICKSORT = r"""
int a[200], stk[256];

int main() {
  int n, i, j, seed, sp, lo, hi, t, x, sum;
  n = 200; seed = 42;
  for (i = 0; i < n; i++) {
    seed = (seed * 3421 + 5443) % 32768;
    a[i] = seed;
  }
  sp = 0;
  stk[sp] = 0; stk[sp + 1] = n - 1; sp = sp + 2;
  while (sp > 0) {
    sp = sp - 2;
    lo = stk[sp]; hi = stk[sp + 1];
    if (lo >= hi) continue;
    x = a[(lo + hi) / 2];
    i = lo; j = hi;
    while (i <= j) {
      while (a[i] < x) i = i + 1;
      while (a[j] > x) j = j - 1;
      if (i <= j) {
        t = a[i]; a[i] = a[j]; a[j] = t;
        i = i + 1; j = j - 1;
      }
    }
    stk[sp] = lo; stk[sp + 1] = j; sp = sp + 2;
    stk[sp] = i; stk[sp + 1] = hi; sp = sp + 2;
  }
  sum = 0;
  for (i = 0; i < n; i++) sum = sum + a[i] * (i + 1);
  putnum(sum); putchar('\n');
  for (i = 0; i < 8; i++) { putnum(a[i * 25]); putchar(' '); }
  putchar('\n');
  return 0;
}
"""

# ---------------------------------------------------------------- banner
# 5x5 font packed into one int per letter, row-major, bit 24 = top-left.
FONT5 = {
 'A':["01110","10001","11111","10001","10001"],
 'B':["11110","10001","11110","10001","11110"],
 'C':["01111","10000","10000","10000","01111"],
 'D':["11110","10001","10001","10001","11110"],
 'E':["11111","10000","11110","10000","11111"],
 'F':["11111","10000","11110","10000","10000"],
 'G':["01111","10000","10011","10001","01111"],
 'H':["10001","10001","11111","10001","10001"],
 'I':["11111","00100","00100","00100","11111"],
 'J':["00111","00010","00010","10010","01100"],
 'K':["10001","10010","11100","10010","10001"],
 'L':["10000","10000","10000","10000","11111"],
 'M':["10001","11011","10101","10001","10001"],
 'N':["10001","11001","10101","10011","10001"],
 'O':["01110","10001","10001","10001","01110"],
 'P':["11110","10001","11110","10000","10000"],
 'Q':["01110","10001","10101","10010","01101"],
 'R':["11110","10001","11110","10010","10001"],
 'S':["01111","10000","01110","00001","11110"],
 'T':["11111","00100","00100","00100","00100"],
 'U':["10001","10001","10001","10001","01110"],
 'V':["10001","10001","10001","01010","00100"],
 'W':["10001","10001","10101","11011","10001"],
 'X':["10001","01010","00100","01010","10001"],
 'Y':["10001","01010","00100","00100","00100"],
 'Z':["11111","00010","00100","01000","11111"],
}
def font_table():
    vals = []
    for ch in sorted(FONT5):
        bits = "".join(FONT5[ch])
        vals.append(str(int(bits, 2)))
    return ", ".join(vals)

BANNER = r"""
int font[26] = { %s };

int main() {
  int row, col, c, i, n, mask;
  char word[16];
  n = 0;
  while ((c = getchar()) != -1 && c != '\n' && n < 15) {
    word[n] = c;
    n = n + 1;
  }
  word[n] = 0;
  for (row = 0; row < 5; row++) {
    for (i = 0; i < n; i++) {
      c = word[i];
      if (c >= 'A' && c <= 'Z') {
        mask = font[c - 'A'];
        for (col = 0; col < 5; col++) {
          if (mask & (1 << (24 - (row * 5 + col)))) putchar('#');
          else putchar(' ');
        }
      } else {
        for (col = 0; col < 5; col++) putchar(' ');
      }
      putchar(' ');
    }
    putchar('\n');
  }
  return 0;
}
""" % font_table()

# ---------------------------------------------------------------- cal
CAL = r"""
int days_in(int m, int y) {
  int d;
  if (m == 2) {
    if ((y % 4 == 0 && y % 100 != 0) || y % 400 == 0) d = 29;
    else d = 28;
  }
  else if (m == 4 || m == 6 || m == 9 || m == 11) d = 30;
  else d = 31;
  return d;
}

/* Day of week of the first of the month; 0 = Sunday (Zeller). */
int first_weekday(int m, int y) {
  int k, j, h;
  if (m < 3) { m = m + 12; y = y - 1; }
  k = y % 100;
  j = y / 100;
  h = (1 + 13 * (m + 1) / 5 + k + k / 4 + j / 4 + 5 * j) % 7;
  /* Zeller: 0 = Saturday; rotate so 0 = Sunday. */
  return (h + 6) % 7;
}

char month_names[12][10];

void copyname(int m, char *s) {
  int i;
  i = 0;
  while (s[i] != 0) { month_names[m][i] = s[i]; i = i + 1; }
  month_names[m][i] = 0;
}

void setup_names() {
  copyname(0, "January");
  copyname(1, "February");
  copyname(2, "March");
  copyname(3, "April");
  copyname(4, "May");
  copyname(5, "June");
  copyname(6, "July");
  copyname(7, "August");
  copyname(8, "September");
  copyname(9, "October");
  copyname(10, "November");
  copyname(11, "December");
}

int name_len(int m) {
  int i;
  i = 0;
  while (month_names[m][i] != 0) i = i + 1;
  return i;
}

/* Print one row of three month titles, centered over 20 columns. */
void print_titles(int row) {
  int m, i, pad, len;
  for (m = row * 3; m < row * 3 + 3; m++) {
    len = name_len(m);
    pad = (20 - len) / 2;
    for (i = 0; i < pad; i++) putchar(' ');
    putstr(month_names[m]);
    for (i = 0; i < 20 - pad - len; i++) putchar(' ');
    if (m % 3 != 2) putchar(' ');
  }
  putchar('\n');
}

int main() {
  int y, row, m, w, n, day, col, week, d;
  int start[3], total[3], done;
  y = readnum();
  setup_names();
  for (row = 0; row < 4; row++) {
    print_titles(row);
    for (m = 0; m < 3; m++) {
      putstr("Su Mo Tu We Th Fr Sa");
      if (m != 2) putchar(' ');
    }
    putchar('\n');
    for (m = 0; m < 3; m++) {
      start[m] = first_weekday(row * 3 + m + 1, y);
      total[m] = days_in(row * 3 + m + 1, y);
    }
    for (week = 0; week < 6; week++) {
      done = 1;
      for (m = 0; m < 3; m++) {
        for (col = 0; col < 7; col++) {
          day = week * 7 + col - start[m] + 1;
          if (day >= 1 && day <= total[m]) {
            if (day < 10) putchar(' ');
            putnum(day);
            done = 0;
          }
          else { putchar(' '); putchar(' '); }
          if (col != 6) putchar(' ');
        }
        if (m != 2) putchar(' ');
      }
      putchar('\n');
      if (done && week > 3) week = 6;
    }
    putchar('\n');
  }
  return 0;
}
"""

# ---------------------------------------------------------------- od
OD = r"""
int main() {
  int c, off, col;
  off = 0; col = 0;
  while ((c = getchar()) != -1) {
    if (col == 0) { putoct(off, 7); }
    putchar(' ');
    putoct(c, 3);
    col = col + 1;
    off = off + 1;
    if (col == 16) { putchar('\n'); col = 0; }
  }
  if (col != 0) putchar('\n');
  putoct(off, 7); putchar('\n');
  return 0;
}
"""

# ---------------------------------------------------------------- grep
GREP = r"""
char pat[128], line[256];

/* Length of the pattern element starting at p: a literal, an escaped
   character, '.', or a [...] class. */
int elem_len(char *p) {
  int i;
  if (p[0] == '\\' && p[1] != 0) return 2;
  if (p[0] != '[') return 1;
  i = 1;
  if (p[i] == '^') i = i + 1;
  while (p[i] != 0 && p[i] != ']') i = i + 1;
  if (p[i] == ']') i = i + 1;
  return i;
}

/* Does text character c match the single pattern element at p? */
int matchelem(char *p, int c) {
  int i, neg, ok, lo, hi;
  if (c == 0) return 0;
  if (p[0] == '\\') return p[1] == c;
  if (p[0] == '.') return 1;
  if (p[0] != '[') return p[0] == c;
  i = 1; neg = 0; ok = 0;
  if (p[i] == '^') { neg = 1; i = i + 1; }
  while (p[i] != 0 && p[i] != ']') {
    if (p[i + 1] == '-' && p[i + 2] != 0 && p[i + 2] != ']') {
      lo = p[i]; hi = p[i + 2];
      if (c >= lo && c <= hi) ok = 1;
      i = i + 3;
    } else {
      if (p[i] == c) ok = 1;
      i = i + 1;
    }
  }
  if (neg) return ok == 0;
  return ok;
}

int matchstar(char *e, char *p, char *t) {
  do {
    if (matchhere(p, t)) return 1;
  } while (matchelem(e, *t++));
  return 0;
}

int matchplus(char *e, char *p, char *t) {
  while (matchelem(e, *t)) {
    t = t + 1;
    if (matchhere(p, t)) return 1;
  }
  return 0;
}

int matchhere(char *p, char *t) {
  int n;
  if (p[0] == 0) return 1;
  if (p[0] == '$' && p[1] == 0) return t[0] == 0;
  n = elem_len(p);
  if (p[n] == '*') return matchstar(p, p + n + 1, t);
  if (p[n] == '+') return matchplus(p, p + n + 1, t);
  if (matchelem(p, t[0])) return matchhere(p + n, t + 1);
  return 0;
}

int match(char *p, char *t) {
  if (p[0] == '^') return matchhere(p + 1, t);
  do {
    if (matchhere(p, t)) return 1;
  } while (*t++ != 0);
  return 0;
}

int main() {
  int c, i, n, lineno;
  i = 0;
  while ((c = getchar()) != -1 && c != '\n') {
    if (i < 127) { pat[i] = c; i = i + 1; }
  }
  pat[i] = 0;
  n = 0;
  lineno = 0;
  c = 0;
  while (c != -1) {
    i = 0;
    while ((c = getchar()) != -1 && c != '\n') {
      if (i < 255) { line[i] = c; i = i + 1; }
    }
    line[i] = 0;
    if (i > 0 || c == '\n') {
      lineno = lineno + 1;
      if (match(pat, line)) {
        putnum(lineno); putchar(':');
        putstr(line); putchar('\n');
        n = n + 1;
      }
    }
  }
  putnum(n); putchar('\n');
  return 0;
}
"""

# ---------------------------------------------------------------- sort
SORT = r"""
char lines[48][32];
char temp[32];

int mystrcmp(char *a, char *b) {
  int i;
  i = 0;
  while (a[i] != 0 && a[i] == b[i]) i = i + 1;
  return a[i] - b[i];
}

void copystr(char *d, char *s) {
  int i;
  i = 0;
  do { d[i] = s[i]; i = i + 1; } while (s[i - 1] != 0);
}

int main() {
  int n, i, j, c, k;
  n = 0;
  c = 0;
  while (c != -1 && n < 48) {
    i = 0;
    c = getchar();
    if (c == -1) break;
    while (c != -1 && c != '\n') {
      if (i < 31) { lines[n][i] = c; i = i + 1; }
      c = getchar();
    }
    lines[n][i] = 0;
    n = n + 1;
  }
  /* insertion sort */
  for (i = 1; i < n; i++) {
    copystr(temp, lines[i]);
    j = i - 1;
    while (j >= 0 && mystrcmp(lines[j], temp) > 0) {
      copystr(lines[j + 1], lines[j]);
      j = j - 1;
    }
    copystr(lines[j + 1], temp);
  }
  for (k = 0; k < n; k++) { putstr(lines[k]); putchar('\n'); }
  return 0;
}
"""

# ---------------------------------------------------------------- deroff
DEROFF = r"""
char line[256];

/* Print text with nroff escapes removed: \fX and \f(XX fonts, \sN size
   changes, \*x and \*(xx strings, \(xx specials, \- and \\ literals. */
void emit(char *s) {
  int i;
  i = 0;
  while (s[i] != 0) {
    if (s[i] == '\\') {
      i = i + 1;
      if (s[i] == 0) return;
      if (s[i] == 'f') { i = i + 1; if (s[i] == '(') i = i + 2; }
      else if (s[i] == 's') { i = i + 1; if (s[i] == '+' || s[i] == '-') i = i + 1; }
      else if (s[i] == '*') { i = i + 1; if (s[i] == '(') i = i + 2; }
      else if (s[i] == '(') { i = i + 2; }
      else if (s[i] == '-') putchar('-');
      else putchar(s[i]);
      if (s[i] == 0) return;
      i = i + 1;
    } else {
      putchar(s[i]);
      i = i + 1;
    }
  }
}

/* Read a line into the global buffer; returns -1 at end of input. *
 * The trailing newline is consumed and not stored.                */
int readline() {
  int c, i;
  i = 0;
  c = getchar();
  if (c == -1) { line[0] = 0; return -1; }
  while (c != -1 && c != '\n') {
    if (i < 255) { line[i] = c; i = i + 1; }
    c = getchar();
  }
  line[i] = 0;
  return i;
}

int main() {
  int n, i;
  for (;;) {
    n = readline();
    if (n < 0) break;
    if (line[0] == '.') {
      /* macros whose arguments are kept: .SH .TH .B .I */
      if ((line[1] == 'S' && line[2] == 'H') || (line[1] == 'T' && line[2] == 'H')
          || ((line[1] == 'B' || line[1] == 'I')
              && (line[2] == ' ' || line[2] == 0))) {
        i = 1;
        while (line[i] != 0 && line[i] != ' ') i = i + 1;
        while (line[i] == ' ') i = i + 1;
        if (line[i] != 0) { emit(line + i); putchar('\n'); }
      }
      else if (line[1] == 'i' && line[2] == 'g') {
        /* .ig: ignore everything until a line starting with .. */
        for (;;) {
          n = readline();
          if (n < 0) break;
          if (line[0] == '.' && line[1] == '.') break;
        }
      }
      /* all other requests are dropped */
    } else {
      emit(line);
      putchar('\n');
    }
  }
  return 0;
}
"""

# ---------------------------------------------------------------- compact
COMPACT = r"""
char buf[8192];
char outbits[8192];
char decoded[8192];
int freq[256];
int weight[512], left[512], right[512], parent[512], active[512];
int codelen[256];
int lencount[32], firstcode[32], offset[32];
int symtab[256];
int outpos;

/* Append the canonical code of one symbol to the bit stream. */
void putbits(int code, int len) {
  int k;
  for (k = len - 1; k >= 0; k--) {
    if (code & (1 << k))
      outbits[outpos / 8] = outbits[outpos / 8] | (1 << (7 - outpos % 8));
    outpos = outpos + 1;
  }
}

int main() {
  int n, c, i, j, nodes, m1, m2, w1, w2, total, sym, len, p;
  int nsyms, maxlen, value, pos, k, bad;
  n = 0;
  while ((c = getchar()) != -1 && n < 8192) {
    buf[n] = c;
    n = n + 1;
  }
  for (i = 0; i < n; i++) freq[buf[i]] = freq[buf[i]] + 1;
  /* leaves */
  nodes = 0;
  for (i = 0; i < 256; i++) {
    if (freq[i] > 0) {
      weight[nodes] = freq[i];
      left[nodes] = -1; right[nodes] = -1; parent[nodes] = -1;
      active[nodes] = 1;
      codelen[i] = nodes;  /* leaf index for symbol, replaced below */
      nodes = nodes + 1;
    } else codelen[i] = -1;
  }
  nsyms = nodes;
  /* build the tree: repeatedly merge the two lightest active nodes */
  j = nodes;
  while (j > 1) {
    m1 = -1; m2 = -1; w1 = 0x7fffffff; w2 = 0x7fffffff;
    for (i = 0; i < nodes; i++) {
      if (active[i]) {
        if (weight[i] < w1) { m2 = m1; w2 = w1; m1 = i; w1 = weight[i]; }
        else if (weight[i] < w2) { m2 = i; w2 = weight[i]; }
      }
    }
    if (m2 < 0) break;
    weight[nodes] = w1 + w2;
    left[nodes] = m1; right[nodes] = m2; parent[nodes] = -1;
    active[nodes] = 1;
    active[m1] = 0; active[m2] = 0;
    parent[m1] = nodes; parent[m2] = nodes;
    nodes = nodes + 1;
    j = j - 1;
  }
  /* code length of each symbol = depth of its leaf */
  total = 0;
  maxlen = 0;
  for (sym = 0; sym < 256; sym++) {
    if (codelen[sym] >= 0) {
      len = 0;
      p = codelen[sym];
      while (parent[p] >= 0) { len = len + 1; p = parent[p]; }
      if (len == 0) len = 1;  /* single-symbol input */
      codelen[sym] = len;
      if (len > maxlen) maxlen = len;
      total = total + len * freq[sym];
    }
  }
  /* canonical codes: count per length, then first code per length */
  for (sym = 0; sym < 256; sym++)
    if (codelen[sym] > 0) lencount[codelen[sym]] = lencount[codelen[sym]] + 1;
  firstcode[0] = 0;
  offset[0] = 0;
  j = 0;
  for (len = 1; len <= maxlen; len++) {
    firstcode[len] = (firstcode[len - 1] + lencount[len - 1]) * 2;
    offset[len] = j;
    j = j + lencount[len];
  }
  /* symbol table ordered by (length, symbol) */
  j = 0;
  for (len = 1; len <= maxlen; len++)
    for (sym = 0; sym < 256; sym++)
      if (codelen[sym] == len) { symtab[j] = sym; j = j + 1; }
  /* encode */
  outpos = 0;
  for (i = 0; i < n; i++) {
    sym = buf[i];
    len = codelen[sym];
    /* the canonical code of sym: firstcode[len] + rank within length */
    value = 0;
    for (k = offset[len]; symtab[k] != sym; k++) value = value + 1;
    putbits(firstcode[len] + value, len);
  }
  /* decode and verify the round trip */
  pos = 0;
  for (i = 0; i < n; i++) {
    value = 0;
    len = 0;
    for (;;) {
      value = value * 2 + ((outbits[pos / 8] >> (7 - pos % 8)) & 1);
      pos = pos + 1;
      len = len + 1;
      if (len > maxlen) break;
      if (lencount[len] > 0 && value >= firstcode[len]
          && value - firstcode[len] < lencount[len]) {
        decoded[i] = symtab[offset[len] + value - firstcode[len]];
        break;
      }
    }
  }
  bad = 0;
  for (i = 0; i < n; i++)
    if (decoded[i] != buf[i]) bad = bad + 1;
  putnum(n * 8); putchar(' ');
  putnum(total); putchar(' ');
  putnum(total * 100 / (n * 8)); putchar(' ');
  putnum(nsyms); putchar(' ');
  if (bad == 0) { putchar('O'); putchar('K'); }
  else { putchar('B'); putchar('A'); putchar('D'); putnum(bad); }
  putchar('\n');
  /* code lengths, as before */
  for (sym = 0; sym < 256; sym++) {
    if (codelen[sym] > 0 && freq[sym] > 0) {
      putchar(sym);
      putchar(':');
      putnum(codelen[sym]);
      putchar(' ');
    }
  }
  putchar('\n');
  return 0;
}
"""

# ---------------------------------------------------------------- mincost
MINCOST = r"""
int adj[24][24];
int part[24];

int cut_cost() {
  int i, j, cost;
  cost = 0;
  for (i = 0; i < 24; i++)
    for (j = i + 1; j < 24; j++)
      if (part[i] != part[j]) cost = cost + adj[i][j];
  return cost;
}

int main() {
  int i, j, seed, best, delta, bi, bj, cost, improved, t, passes;
  seed = 7;
  for (i = 0; i < 24; i++)
    for (j = i + 1; j < 24; j++) {
      seed = (seed * 2417 + 1033) % 32768;
      if (seed % 3 == 0) { adj[i][j] = seed % 9 + 1; adj[j][i] = adj[i][j]; }
    }
  for (i = 0; i < 24; i++) part[i] = i < 12;
  cost = cut_cost();
  putnum(cost); putchar('\n');
  improved = 1;
  passes = 0;
  while (improved && passes < 40) {
    improved = 0;
    best = 0; bi = -1; bj = -1;
    for (i = 0; i < 24; i++) {
      if (part[i] == 0) {
        for (j = 0; j < 24; j++) {
          if (part[j] == 1) {
            /* gain of swapping i and j */
            int g, k;
            g = 0;
            for (k = 0; k < 24; k++) {
              if (k != i && k != j) {
                if (part[k] != part[i]) g = g + adj[i][k]; else g = g - adj[i][k];
                if (part[k] != part[j]) g = g + adj[j][k]; else g = g - adj[j][k];
              }
            }
            g = g - 2 * adj[i][j];
            if (g > best) { best = g; bi = i; bj = j; }
          }
        }
      }
    }
    if (bi >= 0) {
      t = part[bi]; part[bi] = part[bj]; part[bj] = t;
      improved = 1;
    }
    passes = passes + 1;
  }
  cost = cut_cost();
  putnum(cost); putchar(' '); putnum(passes); putchar('\n');
  return 0;
}
"""

# ---------------------------------------------------------------- fannkuch
# Pancake flips over every permutation of 0..5 (Heap's algorithm drives the
# enumeration).  The flip loop + reversal inner loop is the densest branchy
# kernel in the corpus: every iteration ends in a conditional the replicator
# wants to duplicate.
FANNKUCH = r"""
int a[8];
int maxflips, checksum, nperm;

int countflips() {
  int q[8], i, j, t, f, k;
  for (i = 0; i < 6; i++) q[i] = a[i];
  f = 0;
  k = q[0];
  while (k != 0) {
    i = 0; j = k;
    while (i < j) { t = q[i]; q[i] = q[j]; q[j] = t; i = i + 1; j = j - 1; }
    f = f + 1;
    k = q[0];
  }
  return f;
}

void visit() {
  int f;
  f = countflips();
  if (f > maxflips) maxflips = f;
  if (nperm % 2 == 0) checksum = checksum + f;
  else checksum = checksum - f;
  nperm = nperm + 1;
}

void permute(int k) {
  int i, t;
  if (k == 1) { visit(); return; }
  for (i = 0; i < k; i++) {
    permute(k - 1);
    if (k % 2 == 0) { t = a[i]; a[i] = a[k - 1]; a[k - 1] = t; }
    else { t = a[0]; a[0] = a[k - 1]; a[k - 1] = t; }
  }
}

int main() {
  int i;
  for (i = 0; i < 6; i++) a[i] = i;
  maxflips = 0; checksum = 0; nperm = 0;
  permute(6);
  putnum(checksum); putchar(' '); putnum(maxflips); putchar('\n');
  return 0;
}
"""

# ---------------------------------------------------------------- lexer
# A one-pass DFA over a C-like token stream.  The state variable is threaded
# through an explicit transition function; tokens are echoed as one tag
# letter each, then counted.  Terminates immediately on empty input, so the
# daemon CI leg can run it with no stdin.
LEXER = r"""
int state, nident, nnum, nstr, nop, ncmt, len, maxlen, col;

void emit(int kind) {
  putchar(kind);
  col = col + 1;
  if (col == 40) { putchar('\n'); col = 0; }
}

int isletter(int c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

int isdigit2(int c) { return c >= '0' && c <= '9'; }

/* Finish a pending identifier or number token. */
void endtok() {
  if (state == 1) { nident = nident + 1; emit('I'); }
  else { nnum = nnum + 1; emit('N'); }
  if (len > maxlen) maxlen = len;
  state = 0;
}

/* One DFA transition on c; returns 1 when c was consumed.
   States: 0 start, 1 identifier, 2 number, 3 string, 4 line comment,
   5 block comment, 6 saw '/', 7 saw '*' in a block comment,
   8 escape inside a string. */
int step(int c) {
  if (state == 0) {
    if (isletter(c)) { state = 1; len = 1; return 1; }
    if (isdigit2(c)) { state = 2; len = 1; return 1; }
    if (c == '"') { state = 3; return 1; }
    if (c == '/') { state = 6; return 1; }
    if (c == ' ' || c == '\t' || c == '\n') return 1;
    nop = nop + 1; emit('O'); return 1;
  }
  if (state == 1) {
    if (isletter(c) || isdigit2(c)) { len = len + 1; return 1; }
    endtok(); return 0;
  }
  if (state == 2) {
    if (isdigit2(c)) { len = len + 1; return 1; }
    endtok(); return 0;
  }
  if (state == 3) {
    if (c == '\\') { state = 8; return 1; }
    if (c == '"') { nstr = nstr + 1; emit('S'); state = 0; return 1; }
    return 1;
  }
  if (state == 8) { state = 3; return 1; }
  if (state == 6) {
    if (c == '*') { state = 5; return 1; }
    if (c == '/') { state = 4; return 1; }
    nop = nop + 1; emit('O'); state = 0; return 0;
  }
  if (state == 4) {
    if (c == '\n') { ncmt = ncmt + 1; emit('C'); state = 0; }
    return 1;
  }
  if (state == 5) {
    if (c == '*') state = 7;
    return 1;
  }
  if (state == 7) {
    if (c == '/') { ncmt = ncmt + 1; emit('C'); state = 0; return 1; }
    if (c != '*') state = 5;
    return 1;
  }
  state = 0;
  return 1;
}

int main() {
  int c;
  state = 0; nident = 0; nnum = 0; nstr = 0; nop = 0; ncmt = 0;
  len = 0; maxlen = 0; col = 0;
  c = getchar();
  while (c != -1) {
    if (step(c)) c = getchar();
  }
  if (state == 1 || state == 2) endtok();
  else if (state == 4) { ncmt = ncmt + 1; emit('C'); }
  else if (state == 6) { nop = nop + 1; emit('O'); }
  if (col != 0) putchar('\n');
  putnum(nident); putchar(' ');
  putnum(nnum); putchar(' ');
  putnum(nstr); putchar(' ');
  putnum(nop); putchar(' ');
  putnum(ncmt); putchar(' ');
  putnum(maxlen); putchar('\n');
  return 0;
}
"""

# ---------------------------------------------------------------- rdparse
# A recursive-descent parser/evaluator for integer expressions with
# single-letter variables: expr := term (('+'|'-') term)*, term :=
# factor (('*'|'/'|'%') factor)*, factor := number | var | (expr) |
# -factor.  One value (or "error") per input line; mutual recursion
# through factor -> expr exercises call-heavy branchy control flow.
RDPARSE = r"""
char line[128];
int pos, err;
int vars[26];

void skipws() {
  while (line[pos] == ' ') pos = pos + 1;
}

int parse_factor() {
  int v, c;
  skipws();
  c = line[pos];
  if (c == '(') {
    pos = pos + 1;
    v = parse_expr();
    skipws();
    if (line[pos] == ')') pos = pos + 1;
    else err = 1;
    return v;
  }
  if (c == '-') { pos = pos + 1; return -parse_factor(); }
  if (c >= '0' && c <= '9') {
    v = 0;
    while (line[pos] >= '0' && line[pos] <= '9') {
      v = v * 10 + (line[pos] - '0');
      pos = pos + 1;
    }
    return v;
  }
  if (c >= 'a' && c <= 'z') { pos = pos + 1; return vars[c - 'a']; }
  err = 1;
  return 0;
}

int parse_term() {
  int v, d, c;
  v = parse_factor();
  for (;;) {
    skipws();
    c = line[pos];
    if (c == '*') { pos = pos + 1; v = v * parse_factor(); }
    else if (c == '/') {
      pos = pos + 1;
      d = parse_factor();
      if (d == 0) err = 1;
      else v = v / d;
    }
    else if (c == '%') {
      pos = pos + 1;
      d = parse_factor();
      if (d == 0) err = 1;
      else v = v % d;
    }
    else return v;
  }
}

int parse_expr() {
  int v, c;
  v = parse_term();
  for (;;) {
    skipws();
    c = line[pos];
    if (c == '+') { pos = pos + 1; v = v + parse_term(); }
    else if (c == '-') { pos = pos + 1; v = v - parse_term(); }
    else return v;
  }
}

int main() {
  int c, i, v, target, save;
  for (i = 0; i < 26; i++) vars[i] = 0;
  c = 0;
  while (c != -1) {
    i = 0;
    while ((c = getchar()) != -1 && c != '\n') {
      if (i < 127) { line[i] = c; i = i + 1; }
    }
    line[i] = 0;
    if (i > 0) {
      pos = 0; err = 0; target = -1;
      skipws();
      if (line[pos] >= 'a' && line[pos] <= 'z') {
        /* assignment lookahead: var '=' (but not '==') */
        save = pos;
        pos = pos + 1;
        skipws();
        if (line[pos] == '=' && line[pos + 1] != '=') {
          pos = pos + 1;
          target = line[save] - 'a';
        }
        else pos = save;
      }
      v = parse_expr();
      skipws();
      if (line[pos] != 0) err = 1;
      if (err) { putstr("error"); putchar('\n'); }
      else {
        if (target >= 0) vars[target] = v;
        putnum(v); putchar('\n');
      }
    }
  }
  return 0;
}
"""

LEXER_INPUT = r"""/* a small C-like input
   spanning a block comment */
int main() {
  int x1, y2;
  x1 = 42 + 7 * foo(bar, 19);
  y2 = x1 / 3; // integer half
  print("hello \"world\"\n");
  while (y2 > 0) { y2 = y2 - 1; }
  return 0;
}
"""

RDPARSE_INPUT = """1 + 2 * 3
(1 + 2) * 3
x = 10
y = x * x - 5
y % 7
-4 + 2 * (3 - 1)
100 / 7
8 * (2 +
bad!
z - 1
"""

LOREM = (
    "the quick brown fox jumps over the lazy dog\n"
    "pack my box with five dozen liquor jugs\n"
    "how vexingly quick daft zebras jump\n"
    "sphinx of black quartz judge my vow\n"
    "the five boxing wizards jump quickly\n"
    "jackdaws love my big sphinx of quartz\n"
) * 10

NROFF_DOC = (
    ".TH TEST 1 \\*(Dt\n"
    ".SH NAME\n"
    "test \\- a sample document for deroff\n"
    ".ig\n"
    "this block is completely ignored\n"
    "even this \\fBbold\\fP text\n"
    "..\n"
    ".SH DESCRIPTION\n"
    "This is \\fBbold\\fP text and \\fIitalic\\fP text with \\f(BIboth\\fR.\n"
    "Sizes can \\s+2grow\\s-2 and shrink; strings like \\*(Tm and \\*x vanish.\n"
    "Special characters: \\(bu bullets, a \\(em dash, and a literal \\\\ backslash.\n"
    ".B bold-argument\n"
    ".I italic-argument\n"
    ".PP\n"
    "A second paragraph with plain text lines\n"
    "that should survive the filter intact.\n"
) * 5

GREP_INPUT = "[jpq]u[a-z]+k" + "\n" + LOREM

# ---------------------------------------------------------------- nbody
# Shootout-style gravitational n-body in pure integer arithmetic: fixed-point
# positions (x16), Newton integer square root for distances.  Signed overflow
# is defined (-fwrapv matches the simulator's 32-bit wrapping), and every
# divisor is clamped positive, so the trajectory is bit-deterministic.
NBODY = r"""
int x[5], y[5], z[5], vx[5], vy[5], vz[5], m[5];

int isqrt(int n) {
  int r, t;
  if (n <= 0) return 0;
  r = n;
  t = (r + n / r) / 2;
  while (t < r) { r = t; t = (r + n / r) / 2; }
  return r;
}

int main() {
  int i, j, step, dx, dy, dz, d2, d, f, sum;
  for (i = 0; i < 5; i++) {
    x[i] = (i * 371 % 97 - 48) * 16;
    y[i] = (i * 533 % 89 - 44) * 16;
    z[i] = (i * 719 % 83 - 41) * 16;
    vx[i] = i * 7 % 13 - 6;
    vy[i] = i * 11 % 17 - 8;
    vz[i] = i * 13 % 19 - 9;
    m[i] = 20 + i * 30 % 70;
  }
  for (step = 0; step < 50; step++) {
    for (i = 0; i < 5; i++)
      for (j = 0; j < 5; j++) {
        if (i == j) continue;
        dx = x[j] - x[i];
        dy = y[j] - y[i];
        dz = z[j] - z[i];
        d2 = dx * dx + dy * dy + dz * dz;
        if (d2 < 4) d2 = 4;
        d = isqrt(d2);
        f = m[j] * 256 / d2;
        vx[i] = vx[i] + f * dx / d;
        vy[i] = vy[i] + f * dy / d;
        vz[i] = vz[i] + f * dz / d;
      }
    for (i = 0; i < 5; i++) {
      x[i] = x[i] + vx[i] / 4;
      y[i] = y[i] + vy[i] / 4;
      z[i] = z[i] + vz[i] / 4;
    }
  }
  sum = 0;
  for (i = 0; i < 5; i++)
    sum = sum + x[i] + y[i] + z[i] + vx[i] + vy[i] + vz[i];
  putnum(sum); putchar('\n');
  for (i = 0; i < 5; i++) {
    putnum(x[i]); putchar(' ');
    putnum(y[i]); putchar(' ');
    putnum(z[i]); putchar('\n');
  }
  return 0;
}
"""

# ---------------------------------------------------------------- spectral
# Shootout spectral-norm in fixed point: power iteration with the implicit
# matrix A(i,j) = 1/((i+j)(i+j+1)/2 + i + 1), vectors renormalized to 1000
# each round so every intermediate stays small and positive (all divisors
# provably nonzero).
SPECTRAL = r"""
int u[16], v[16], tmp[16];

int aden(int i, int j) {
  return (i + j) * (i + j + 1) / 2 + i + 1;
}

int main() {
  int i, j, s, it, maxv;
  for (i = 0; i < 16; i++) u[i] = 1000;
  maxv = 1000;
  for (it = 0; it < 10; it++) {
    for (i = 0; i < 16; i++) {
      s = 0;
      for (j = 0; j < 16; j++) s = s + u[j] * 256 / aden(i, j);
      tmp[i] = s;
    }
    for (i = 0; i < 16; i++) {
      s = 0;
      for (j = 0; j < 16; j++) s = s + tmp[j] / aden(j, i);
      v[i] = s / 256;
    }
    maxv = 0;
    for (i = 0; i < 16; i++)
      if (v[i] > maxv) maxv = v[i];
    for (i = 0; i < 16; i++) u[i] = v[i] * 1000 / maxv;
  }
  putnum(maxv); putchar('\n');
  for (i = 0; i < 16; i++) { putnum(u[i]); putchar(' '); }
  putchar('\n');
  return 0;
}
"""

PROGRAMS = [
    # name, description, helpers, source, input
    ("banner", "banner generator", ["putstr"], BANNER, "HELLO\n"),
    ("cal", "calendar generator (full year)", ["putstr", "putnum", "readnum"], CAL, "1992\n"),
    ("compact", "file compression (static Huffman analysis)", ["putnum"], COMPACT, LOREM),
    ("deroff", "remove nroff constructs", [], DEROFF, NROFF_DOC),
    ("grep", "pattern search (literal, ^ $ . *)", ["putstr", "putnum"], GREP, GREP_INPUT),
    ("od", "octal dump", ["putoct"], OD, LOREM[:512]),
    ("sort", "sort lines", ["putstr"], SORT, LOREM[: LOREM.index("jackdaws") + 40]),
    ("wc", "word count", ["putnum"], WC, LOREM),
    ("bubblesort", "sort numbers", ["putnum"], BUBBLE, ""),
    ("matmult", "matrix multiplication", ["putnum"], MATMULT, ""),
    ("sieve", "sieve of Eratosthenes", ["putnum"], SIEVE, ""),
    ("queens", "8-queens problem", ["putnum"], QUEENS, ""),
    ("quicksort", "sort numbers (iterative)", ["putnum"], QUICKSORT, ""),
    ("mincost", "VLSI circuit partitioning", ["putnum"], MINCOST, ""),
    ("fannkuch", "pancake flips over all permutations", ["putnum"], FANNKUCH, ""),
    ("lexer", "state-machine lexer for C-like tokens", ["putnum"], LEXER, LEXER_INPUT),
    ("rdparse", "recursive-descent expression evaluator", ["putstr", "putnum"], RDPARSE, RDPARSE_INPUT),
    ("nbody", "integer n-body simulation (fixed point)", ["putnum"], NBODY, ""),
    ("spectral", "spectral norm by power iteration (fixed point)", ["putnum"], SPECTRAL, ""),
]

CLASSES = {
    "banner": "Utility", "cal": "Utility", "compact": "Utility",
    "deroff": "Utility", "grep": "Utility", "od": "Utility",
    "sort": "Utility", "wc": "Utility",
    "bubblesort": "Benchmark", "matmult": "Benchmark", "sieve": "Benchmark",
    "queens": "Benchmark", "quicksort": "Benchmark",
    "mincost": "User code",
    "fannkuch": "Benchmark", "lexer": "Utility", "rdparse": "User code",
    "nbody": "Benchmark", "spectral": "Benchmark",
}

# The corpus additions are also materialized as example source files with
# bundled inputs and golden outputs.
EXAMPLES = ["fannkuch", "lexer", "rdparse", "nbody", "spectral"]


def build_source(helpers, body):
    return "".join(HELPERS[h] for h in helpers) + body


def run_gcc(source, input_text):
    with tempfile.TemporaryDirectory() as d:
        csrc = os.path.join(d, "prog.c")
        exe = os.path.join(d, "prog")
        with open(csrc, "w") as f:
            f.write("#include <stdio.h>\n#include <stdlib.h>\n")
            f.write(source)
        subprocess.run(
            ["gcc", "-funsigned-char", "-fwrapv", "-O0", "-o", exe, csrc],
            check=True, capture_output=True)
        res = subprocess.run([exe], input=input_text.encode(),
                             capture_output=True, timeout=30)
        if res.returncode != 0:
            raise RuntimeError(f"nonzero exit {res.returncode}")
        return res.stdout.decode()


def ocaml_string(s):
    out = []
    for ch in s:
        o = ord(ch)
        if ch == '"':
            out.append('\\"')
        elif ch == "\\":
            out.append("\\\\")
        elif ch == "\n":
            out.append("\\n")
        elif 32 <= o < 127:
            out.append(ch)
        else:
            out.append("\\%03d" % o)
    return '"' + "".join(out) + '"'


def main():
    entries = []
    for name, desc, helpers, body, input_text in PROGRAMS:
        source = build_source(helpers, body)
        expected = run_gcc(source, input_text)
        print(f"{name:12s} expected output {len(expected)} bytes", file=sys.stderr)
        entries.append((name, desc, source, input_text, expected))

    with open("lib/programs/suite.ml", "w") as f:
        f.write("(* Generated by tools/gen_programs.py — do not edit by hand.\n")
        f.write("   Expected outputs were captured from gcc -funsigned-char -O0. *)\n\n")
        f.write("type benchmark = {\n")
        f.write("  name : string;\n")
        f.write("  clazz : string;\n")
        f.write("  description : string;\n")
        f.write("  source : string;\n")
        f.write("  input : string;\n")
        f.write("  expected_output : string;\n")
        f.write("}\n\n")
        for name, desc, source, input_text, expected in entries:
            f.write(f"let {name} = {{\n")
            f.write(f"  name = {ocaml_string(name)};\n")
            f.write(f"  clazz = {ocaml_string(CLASSES[name])};\n")
            f.write(f"  description = {ocaml_string(desc)};\n")
            f.write(f"  source = {ocaml_string(source)};\n")
            f.write(f"  input = {ocaml_string(input_text)};\n")
            f.write(f"  expected_output = {ocaml_string(expected)};\n")
            f.write("}\n\n")
        f.write("let all = [ " + "; ".join(n for n, *_ in entries) + " ]\n\n")
        f.write("let find name = List.find_opt (fun b -> String.equal b.name name) all\n")
    print("wrote lib/programs/suite.ml", file=sys.stderr)

    for name, desc, source, input_text, expected in entries:
        if name not in EXAMPLES:
            continue
        with open(f"examples/c/{name}.c", "w") as f:
            f.write(f"/* {desc}; generated by tools/gen_programs.py — do not\n")
            f.write("   edit by hand.  Bundled input: %s.input; golden output\n" % name)
            f.write("   (captured from gcc -funsigned-char -O0): %s.expected. */\n" % name)
            f.write(source)
        with open(f"examples/c/{name}.input", "w") as f:
            f.write(input_text)
        with open(f"examples/c/{name}.expected", "w") as f:
            f.write(expected)
        print(f"wrote examples/c/{name}.{{c,input,expected}}", file=sys.stderr)


if __name__ == "__main__":
    main()
