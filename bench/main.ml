(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's experiment index) and runs Bechamel
   micro-benchmarks of the compiler itself.

   Usage:
     bench/main.exe                 print all tables and figures
     bench/main.exe -t 4 -t 6       only Tables 4 and 6
     bench/main.exe --list          list available table ids
     bench/main.exe --bechamel      also run pass micro-benchmarks
     bench/main.exe --json          write BENCH_results.json (full sweep)
     bench/main.exe --json --profile --trace-out trace.json
                                    profiled sweep + Perfetto trace

   Any output mismatch discovered while measuring makes the driver exit
   nonzero (see Harness.Measure.mismatches).                              *)

let available : (string * string * (Format.formatter -> unit)) list =
  [
    ("1", "Table 1: loop with exit condition in the middle", Harness.Tables.table1);
    ("2", "Table 2: if-then-else", Harness.Tables.table2);
    ("3", "Table 3: test set", Harness.Tables.table3);
    ("4", "Table 4: percent unconditional jumps", Harness.Tables.table4);
    ("5", "Table 5: static and dynamic instructions", Harness.Tables.table5);
    ("6", "Table 6: cache miss ratio and fetch cost", Harness.Tables.table6);
    ("bb", "Section 5.2: block statistics", Harness.Tables.block_stats);
    ("fig", "Figures 1 and 2: loop interference cases", Harness.Tables.figures);
    ("cap", "Ablation: bounded replication (paper section 6)", Harness.Tables.ablation_cap);
    ("heur", "Ablation: step-2 heuristic", Harness.Tables.ablation_heuristic);
    ("assoc", "Ablation: cache associativity (extension)", Harness.Tables.ablation_assoc);
    ("passes", "Ablation: cleanup passes (paper section 3.3)", Harness.Tables.ablation_passes);
  ]

(* --- Bechamel micro-benchmarks of the compiler and simulator --- *)

(* Record one instruction-fetch trace so the cache-simulation micros
   feed both implementations the identical stream, isolated from the
   interpreter. *)
let record_trace asm prog =
  let addrs = ref (Array.make 4096 0) in
  let sizes = ref (Array.make 4096 0) in
  let len = ref 0 in
  let push addr size =
    if !len = Array.length !addrs then begin
      let grow a = Array.append a (Array.make (Array.length a) 0) in
      addrs := grow !addrs;
      sizes := grow !sizes
    end;
    !addrs.(!len) <- addr;
    !sizes.(!len) <- size;
    incr len
  in
  ignore
    (Sim.Interp.run ~on_fetch:(fun ~addr ~size -> push addr size) asm prog);
  (Array.sub !addrs 0 !len, Array.sub !sizes 0 !len)

(* The largest CFG among a handful of fuzz-generated programs — input
   for the shortest-path micros.  Compiled at LOOPS so the jumps pass
   has not already eaten the unconditional jumps. *)
let gen_cfg () =
  let best = ref None in
  for seed = 0 to 14 do
    let p = Harness.Gen.generate (Random.State.make [| seed |]) in
    match
      Opt.Driver.compile
        { Opt.Driver.default_options with level = Opt.Driver.Loops }
        Ir.Machine.risc (Harness.Gen.to_c p)
    with
    | exception _ -> ()
    | prog ->
      List.iter
        (fun f ->
          let g = Flow.Cfg.make f in
          let n = Flow.Cfg.num_blocks g in
          match !best with
          | Some (_, _, n') when n' >= n -> ()
          | _ -> best := Some (f, g, n))
        prog.Flow.Prog.funcs
  done;
  let f, g, _ = Option.get !best in
  (f, g)

let bechamel_tests () =
  let open Bechamel in
  let quicksort = Option.get (Programs.Suite.find "quicksort") in
  let sieve = Option.get (Programs.Suite.find "sieve") in
  let parsed = Frontend.Parser.parse_program quicksort.source in
  let compiled = Frontend.Codegen.compile_program parsed in
  let jumps_input =
    Opt.Legalize.run Ir.Machine.risc
      (Option.get (Flow.Prog.find_func compiled "main"))
  in
  let prog_simple =
    Opt.Driver.optimize Opt.Driver.default_options Ir.Machine.risc compiled
  in
  let asm_simple = Sim.Asm.assemble Ir.Machine.risc prog_simple in
  let trace_addrs, trace_sizes = record_trace asm_simple prog_simple in
  let trace_len = Array.length trace_addrs in
  let caches = List.map Icache.create Icache.paper_configs in
  let bank = Icache.Bank.create Icache.paper_configs in
  let sp_func, sp_cfg = gen_cfg () in
  let sp_blocks = Flow.Cfg.num_blocks sp_cfg in
  (* The query mix of the JUMPS pass: a handful of jump-target sources,
     each asked for a few destinations. *)
  let sp_queries sp_path =
    let src = ref 0 in
    while !src < sp_blocks do
      ignore (sp_path ~src:!src ~dst:0);
      if !src + 1 < sp_blocks then ignore (sp_path ~src:!src ~dst:(!src + 1));
      src := !src + 8
    done
  in
  (* The largest linearized CISC function of the JUMPS build — input for
     the branch-displacement solver micro. *)
  let disp_code, disp_labels =
    let prog =
      Opt.Driver.compile
        { Opt.Driver.default_options with level = Opt.Driver.Jumps }
        Ir.Machine.cisc quicksort.source
    in
    List.fold_left
      (fun (bc, bl) f ->
        let c, l = Sim.Asm.linearize f in
        if Array.length c > Array.length bc then (c, l) else (bc, bl))
      ([||], Ir.Label.Map.empty)
      prog.Flow.Prog.funcs
  in
  let t name f = Test.make ~name (Staged.stage f) in
  [
    t "parse/quicksort" (fun () ->
        ignore (Frontend.Parser.parse_program quicksort.source));
    t "codegen/quicksort" (fun () ->
        ignore (Frontend.Codegen.compile_program parsed));
    t "jumps-pass/quicksort" (fun () ->
        ignore
          (Replication.Jumps.run Replication.Jumps.default_config jumps_input));
    t "pipeline-simple/quicksort" (fun () ->
        ignore
          (Opt.Driver.optimize Opt.Driver.default_options Ir.Machine.risc
             compiled));
    t "pipeline-jumps/quicksort" (fun () ->
        ignore
          (Opt.Driver.optimize
             { Opt.Driver.default_options with level = Opt.Driver.Jumps }
             Ir.Machine.risc compiled));
    t "decode/quicksort" (fun () ->
        ignore (Sim.Interp.Decoded.decode asm_simple prog_simple));
    t "engine-threaded/quicksort" (fun () ->
        ignore (Sim.Engine.run asm_simple prog_simple));
    t "interp-decoded/quicksort" (fun () ->
        ignore (Sim.Interp.run asm_simple prog_simple));
    t "interp-reference/quicksort" (fun () ->
        ignore (Sim.Interp.run_reference asm_simple prog_simple));
    t "engine-compile/quicksort" (fun () ->
        ignore
          (Sim.Engine.compile (Sim.Interp.Decoded.decode asm_simple prog_simple)));
    t "cachesim-bank/quicksort-trace" (fun () ->
        Icache.Bank.reset bank;
        for i = 0 to trace_len - 1 do
          Icache.Bank.access bank ~addr:trace_addrs.(i) ~size:trace_sizes.(i)
        done);
    t "cachesim-list/quicksort-trace" (fun () ->
        List.iter Icache.reset caches;
        for i = 0 to trace_len - 1 do
          List.iter
            (fun c ->
              Icache.access c ~addr:trace_addrs.(i) ~size:trace_sizes.(i))
            caches
        done);
    t
      (Printf.sprintf "shortest-path-fw/gen-%db" sp_blocks)
      (fun () ->
        let ap = Replication.Shortest_path.All_pairs.compute sp_func sp_cfg in
        sp_queries (Replication.Shortest_path.All_pairs.path ap));
    t
      (Printf.sprintf "shortest-path-lazy/gen-%db" sp_blocks)
      (fun () ->
        let sp = Replication.Shortest_path.create sp_func sp_cfg in
        sp_queries (Replication.Shortest_path.path sp));
    t "sweep-j1/suite-simple-risc" (fun () ->
        Harness.Measure.reset_cache ();
        ignore
          (Harness.Measure.run_suite ~jobs:1 Opt.Driver.Simple Ir.Machine.risc));
    t "sweep-j2/suite-simple-risc" (fun () ->
        Harness.Measure.reset_cache ();
        ignore
          (Harness.Measure.run_suite ~jobs:2 Opt.Driver.Simple Ir.Machine.risc));
    t "pipeline-jumps/sieve-cisc" (fun () ->
        ignore
          (Opt.Driver.compile
             { Opt.Driver.default_options with level = Opt.Driver.Jumps }
             Ir.Machine.cisc sieve.source));
    t
      (Printf.sprintf "displace-encode/quicksort-%di" (Array.length disp_code))
      (fun () -> ignore (Ir.Encode.solve Ir.Machine.cisc disp_code disp_labels));
  ]

let run_bechamel ?(quota = 0.5) () =
  let open Bechamel in
  let open Toolkit in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second quota) () in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  print_endline "Bechamel micro-benchmarks (ns per run, OLS estimate):";
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let result = Benchmark.run cfg instances elt in
          let est = Analyze.one ols Instance.monotonic_clock result in
          let value =
            match Analyze.OLS.estimates est with
            | Some (v :: _) -> v
            | _ -> nan
          in
          Printf.printf "  %-32s %14.0f ns  (%.3f ms)\n%!" (Test.Elt.name elt)
            value (value /. 1_000_000.0))
        (Test.elements test))
    (bechamel_tests ())

(* --- machine-readable results: the full suite sweep as JSON --- *)

(* Every (benchmark, level, machine) measurement plus the telemetry counter
   totals of the sweep, in one JSON document.  The numbers come from the
   same Harness.Measure/Telemetry path the tables use.  [run_many]
   guarantees the document is byte-identical at any [jobs]. *)
let write_json ~jobs ?deadline ?retries ?chaos ?engine ?(profile = false)
    ?(profile_out = "") ?(profile_top = 15) ?(trace_out = "") path =
  let levels = [ Opt.Driver.Simple; Opt.Driver.Loops; Opt.Driver.Jumps ] in
  let machines = [ Ir.Machine.risc; Ir.Machine.cisc ] in
  let log = Telemetry.Log.make Telemetry.Log.Memory in
  (* The observability instruments ride beside the sweep: the profiler
     and trace never touch the measurement or counter paths, so the
     results document stays byte-identical with them on or off. *)
  let profiling = profile || profile_out <> "" in
  let profiler =
    if profiling then Telemetry.Profiler.create () else Telemetry.Profiler.null
  in
  let trace =
    if trace_out = "" then None else Some (Telemetry.Trace.create ())
  in
  Option.iter (fun t -> Telemetry.Trace.process_name t "jumprepc bench") trace;
  (* Pool supervisor tallies land in their own registry, not the sweep
     log's: the results document's "counters" object must not grow. *)
  let pool_metrics =
    if profiling || trace <> None then Telemetry.Metrics.create ()
    else Telemetry.Metrics.null
  in
  let tasks =
    List.concat_map
      (fun machine ->
        List.concat_map
          (fun level ->
            List.map (fun b -> (b, level, machine)) Programs.Suite.all)
          levels)
      machines
  in
  let results =
    Harness.Measure.run_many ~log ~profiler ?trace ~metrics:pool_metrics ~jobs
      ?deadline ?retries ?chaos ?engine tasks
  in
  (* The supervising domain's decode/compile cache tallies (workers'
     shards are domain-local and die with their domain; a -j 1 sweep sees
     the full picture).  They live beside the pool tallies, never in the
     sweep log — the results document must not depend on scheduling. *)
  Sim.Interp.publish_cache_metrics pool_metrics;
  Sim.Engine.publish_cache_metrics pool_metrics;
  let counters =
    Telemetry.Counter.all log
    |> List.map (fun (name, value) ->
           Printf.sprintf "%s:%d" (Telemetry.Log.json_string name) value)
  in
  (* The failures array appears only when non-empty, so a clean sweep's
     document stays byte-identical to the committed baseline. *)
  let failures =
    match Harness.Measure.task_failures () with
    | [] -> ""
    | fs ->
      Printf.sprintf ",\"failures\":[%s]"
        (String.concat "," (List.map Harness.Measure.failure_to_json fs))
  in
  let oc = open_out path in
  (* The engine label is provenance, not a measurement: every engine
     must produce the same results array, so the label is the only field
     that could differ between sweeps of different engines. *)
  Printf.fprintf oc "{\"engine\":\"%s\",\"results\":[%s],\"counters\":{%s}%s}\n"
    (Sim.Engine.kind_name
       (Option.value ~default:Sim.Engine.Threaded engine))
    (String.concat "," (List.map Harness.Measure.to_json results))
    (String.concat "," counters)
    failures;
  close_out oc;
  Printf.printf "wrote %s (%d measurements, %d tasks failed)\n" path
    (List.length results)
    (List.length (Harness.Measure.task_failures ()));
  if profiling then begin
    Telemetry.Profiler.pp_table ~top:profile_top Format.std_formatter profiler;
    Format.pp_print_flush Format.std_formatter ();
    if profile_out <> "" then begin
      let doc =
        Telemetry.Json.Obj
          [
            ("profile", Telemetry.Profiler.to_json profiler);
            ("metrics", Telemetry.Metrics.to_json (Telemetry.Log.metrics log));
            ("pool", Telemetry.Metrics.to_json pool_metrics);
          ]
      in
      let oc = open_out profile_out in
      output_string oc (Telemetry.Json.to_string doc);
      output_char oc '\n';
      close_out oc;
      Printf.printf "wrote %s\n" profile_out
    end
  end;
  (match trace with
  | None -> ()
  | Some t ->
    let oc = open_out trace_out in
    Telemetry.Trace.write t oc;
    close_out oc;
    Printf.printf "wrote %s (%d trace events)\n" trace_out
      (Telemetry.Trace.events t));
  if chaos <> None then begin
    let s = Harness.Measure.pool_stats () in
    Printf.printf
      "chaos: %d faults injected (%d crashes, %d hangs, %d allocs), %d \
       retries, %d respawns, %d abandoned\n"
      (Harness.Pool.injected s) s.Harness.Pool.injected_crashes
      s.Harness.Pool.injected_hangs s.Harness.Pool.injected_allocs
      s.Harness.Pool.retried s.Harness.Pool.respawned s.Harness.Pool.abandoned
  end

(* --- campaign mode: the sweep against a content-addressed store --- *)

(* Same document, computed through Campaign.Runner: cached rows are
   spliced back verbatim and counter deltas replayed, so the output is
   byte-identical to the cold [write_json] path above at any worker
   count, with or without a kill-and-resume in between. *)
let write_json_campaign ~dir ~resume ~workers ~jobs ?deadline ?retries ?chaos
    ?engine path =
  let levels = [ Opt.Driver.Simple; Opt.Driver.Loops; Opt.Driver.Jumps ] in
  let machines = [ Ir.Machine.risc; Ir.Machine.cisc ] in
  let log = Telemetry.Log.make Telemetry.Log.Memory in
  let tasks =
    List.concat_map
      (fun machine ->
        List.concat_map
          (fun level ->
            List.map (fun b -> (b, level, machine)) Programs.Suite.all)
          levels)
      machines
  in
  let store = Campaign.Store.open_ dir in
  let worker_argv = [| Sys.executable_name; "--worker"; "--store"; dir |] in
  let engine = Option.value ~default:Sim.Engine.Threaded engine in
  let rows, s =
    Campaign.Runner.sweep ~store ~resume ~workers ~worker_argv ~jobs ?deadline
      ?retries ?chaos ~engine ~log tasks
  in
  List.iter
    (fun d ->
      Printf.eprintf "jumprepc: warning: %s\n" (Telemetry.Diag.to_string d))
    s.Campaign.Runner.diags;
  let counters =
    Telemetry.Counter.all log
    |> List.map (fun (name, value) ->
           Printf.sprintf "%s:%d" (Telemetry.Log.json_string name) value)
  in
  let failures =
    match s.Campaign.Runner.failures with
    | [] -> ""
    | fs ->
      Printf.sprintf ",\"failures\":[%s]"
        (String.concat "," (List.map Harness.Measure.failure_to_json fs))
  in
  let oc = open_out path in
  Printf.fprintf oc "{\"engine\":\"%s\",\"results\":[%s],\"counters\":{%s}%s}\n"
    (Sim.Engine.kind_name engine)
    (String.concat ","
       (List.map (fun r -> r.Campaign.Runner.r_row) rows))
    (String.concat "," counters)
    failures;
  close_out oc;
  Printf.printf "wrote %s (%d measurements, %d tasks failed)\n" path
    (List.length rows)
    (List.length s.Campaign.Runner.failures);
  Printf.printf
    "campaign: %d tasks, %d cached, %d computed, %d corrupt, %d worker kills, \
     %d respawns\n"
    s.Campaign.Runner.total s.Campaign.Runner.hits s.Campaign.Runner.computed
    s.Campaign.Runner.corrupt s.Campaign.Runner.kills
    s.Campaign.Runner.respawns;
  (* The cold path's verdicts live in Harness.Measure's process-global
     records; campaign rows carry their own flags, so re-derive the same
     report (and exit discipline) from them. *)
  let failed = ref false in
  List.iter
    (fun (r : Campaign.Runner.row) ->
      if r.r_timed_out then begin
        failed := true;
        Printf.eprintf "TIMEOUT: %s at %s on %s\n" r.r_program r.r_level
          r.r_machine
      end
      else if not r.r_output_ok then begin
        failed := true;
        Printf.eprintf "MISMATCH: %s at %s on %s\n" r.r_program r.r_level
          r.r_machine
      end)
    rows;
  (match s.Campaign.Runner.failures with
  | [] -> ()
  | fs ->
    if chaos = None then failed := true;
    List.iter
      (fun (f : Harness.Measure.task_failure) ->
        Printf.eprintf "TASK %s: %s at %s on %s (%d attempts: %s)\n"
          (String.uppercase_ascii f.f_kind)
          f.f_program
          (Opt.Driver.level_name f.f_level)
          f.f_machine f.f_attempts f.f_detail)
      fs);
  !failed

(* Worker-process mode: serve measure frames over stdin/stdout.  Handled
   before [Arg.parse] so the protocol loop owns stdout from the first
   byte. *)
let worker_main () =
  let dir = ref Campaign.Store.default_dir in
  Array.iteri
    (fun i a ->
      if a = "--store" && i + 1 < Array.length Sys.argv then
        dir := Sys.argv.(i + 1))
    Sys.argv;
  let store = Campaign.Store.open_ !dir in
  Campaign.Shard.serve ~handler:(Campaign.Runner.worker_handler store) ()

let () =
  if Array.exists (( = ) "--worker") Sys.argv then begin
    worker_main ();
    exit 0
  end;
  (* The sweep is allocation-heavy (functional IR rewriting promotes
     hundreds of megawords through the default 256K-word minor heap); a
     larger nursery and a lazier major collector trade a few MB of RSS
     for a large cut in GC time.  Purely a scheduling change — results
     are GC-invariant. *)
  Gc.set
    { (Gc.get ()) with Gc.minor_heap_size = 1 lsl 20; space_overhead = 200 };
  let tables = ref [] in
  let list_only = ref false in
  let bech = ref false in
  let bech_quota = ref 0.5 in
  let json = ref false in
  let jobs = ref (Harness.Pool.default_jobs ()) in
  let chaos = ref None in
  let task_deadline = ref None in
  let retries = ref None in
  let profile = ref false in
  let profile_out = ref "" in
  let profile_top = ref 15 in
  let trace_out = ref "" in
  let engine = ref None in
  let store = ref "" in
  let resume = ref false in
  let workers = ref 0 in
  let spec =
    [
      ( "-t",
        Arg.String (fun s -> tables := s :: !tables),
        "ID  print only this table/figure (repeatable)" );
      ( "--tables",
        Arg.String (fun s -> tables := s :: !tables),
        "ID  same as -t" );
      ("--list", Arg.Set list_only, " list available ids");
      ("--bechamel", Arg.Set bech, " run pass micro-benchmarks");
      ( "--bechamel-quota",
        Arg.Set_float bech_quota,
        "SECS  per-benchmark time budget (default 0.5)" );
      ("--json", Arg.Set json, " write BENCH_results.json (full suite sweep)");
      ( "-j",
        Arg.Set_int jobs,
        "N  worker domains for the --json sweep (default $JUMPREP_JOBS or 1)"
      );
      ( "--jobs",
        Arg.Set_int jobs,
        "N  same as -j" );
      ( "--chaos",
        Arg.String
          (fun s ->
            match Harness.Pool.chaos_of_string s with
            | Ok c -> chaos := Some c
            | Error e ->
              Printf.eprintf "bad --chaos spec: %s\n" e;
              exit 2),
        "SPEC  inject deterministic worker faults into the --json sweep \
         (crash|hang|alloc[:RATE],seed:N)" );
      ( "--task-deadline",
        Arg.Float (fun s -> task_deadline := Some s),
        "SECS  per-task wall-clock deadline for the --json sweep (default \
         1.0 when --chaos enables hangs, else none)" );
      ( "--retries",
        Arg.Int (fun n -> retries := Some n),
        "N  retry failed tasks up to N times (default 2)" );
      ( "--profile",
        Arg.Set profile,
        " profile the --json sweep: wall time and GC allocation per \
         (function x pass), fuel/interp/cache time per run" );
      ( "--profile-out",
        Arg.Set_string profile_out,
        "PATH  also write the profile (plus metric registries) as JSON \
         (implies --profile)" );
      ( "--profile-top",
        Arg.Set_int profile_top,
        "N  rows in the printed profile tables (default 15)" );
      ( "--trace-out",
        Arg.Set_string trace_out,
        "PATH  write a Chrome/Perfetto trace of the --json sweep (worker \
         spans, supervisor and chaos events)" );
      ( "--engine",
        Arg.String
          (fun s ->
            match Sim.Engine.kind_of_string s with
            | Some k -> engine := Some k
            | None ->
              Printf.eprintf "bad --engine (threaded|decoded|reference)\n";
              exit 2),
        "ENGINE  execution engine for the --json sweep: threaded (default), \
         decoded or reference — observationally equivalent, only speed \
         differs" );
      ( "--store",
        Arg.Set_string store,
        "DIR  content-addressed result store for the --json sweep (campaign \
         mode: every result is committed as it completes)" );
      ( "--resume",
        Arg.Set resume,
        " reuse committed store entries and compute only the delta \
         (requires --store)" );
      ( "--workers",
        Arg.Int
          (fun n -> workers := Harness.Pool.clamp_jobs ~what:"--workers" n),
        "N  shard the campaign over N worker processes (requires --store; \
         0 = compute in-process)" );
      ( "--worker",
        Arg.Unit (fun () -> ()),
        " internal: serve measure frames over stdin/stdout (handled before \
         argument parsing)" );
    ]
  in
  Arg.parse spec
    (fun s -> tables := s :: !tables)
    "bench/main.exe [-t ID]... — regenerate the paper's tables";
  if !list_only then
    List.iter (fun (id, desc, _) -> Printf.printf "%-5s %s\n" id desc) available
  else begin
    let selected =
      if !tables = [] && not !json then available
      else
        List.filter_map
          (fun id ->
            match List.find_opt (fun (i, _, _) -> i = id) available with
            | Some entry -> Some entry
            | None ->
              Printf.eprintf "unknown table id %s (try --list)\n" id;
              None)
          (List.rev !tables)
    in
    let ppf = Format.std_formatter in
    List.iter
      (fun (_, _, print) ->
        print ppf;
        Format.pp_print_flush ppf ())
      selected;
    let campaign_failed = ref false in
    if !json then begin
      (* Injected hangs need a deadline to be cancelled against. *)
      let deadline =
        match !task_deadline, !chaos with
        | (Some _ as d), _ -> d
        | None, Some c when c.Harness.Pool.hang > 0. -> Some 1.0
        | None, _ -> None
      in
      if !store <> "" then
        campaign_failed :=
          write_json_campaign ~dir:!store ~resume:!resume ~workers:!workers
            ~jobs:(max 1 !jobs) ?deadline ?retries:!retries ?chaos:!chaos
            ?engine:!engine "BENCH_results.json"
      else begin
        if !resume || !workers > 0 then begin
          Printf.eprintf "--resume/--workers need --store DIR\n";
          exit 2
        end;
        write_json ~jobs:(max 1 !jobs) ?deadline ?retries:!retries
          ?chaos:!chaos ?engine:!engine ~profile:!profile
          ~profile_out:!profile_out ~profile_top:!profile_top
          ~trace_out:!trace_out "BENCH_results.json"
      end
    end;
    if !bech then run_bechamel ~quota:!bech_quota ();
    (* Timeouts and mismatches are distinct verdicts; either fails the
       sweep. *)
    let failed = ref false in
    (match Harness.Measure.timeouts () with
    | [] -> ()
    | hung ->
      failed := true;
      List.iter
        (fun (prog, level, machine) ->
          Printf.eprintf "TIMEOUT: %s at %s on %s\n" prog
            (Opt.Driver.level_name level)
            machine)
        hung);
    (match Harness.Measure.mismatches () with
    | [] -> ()
    | bad ->
      failed := true;
      List.iter
        (fun (prog, level, machine) ->
          Printf.eprintf "MISMATCH: %s at %s on %s\n" prog
            (Opt.Driver.level_name level)
            machine)
        bad);
    (* Tasks that produced no measurement at all: expected collateral
       under chaos (reported, exit 0), a hard failure without it. *)
    (match Harness.Measure.task_failures () with
    | [] -> ()
    | fs ->
      if !chaos = None then failed := true;
      List.iter
        (fun (f : Harness.Measure.task_failure) ->
          Printf.eprintf "TASK %s: %s at %s on %s (%d attempts: %s)\n"
            (String.uppercase_ascii f.f_kind)
            f.f_program
            (Opt.Driver.level_name f.f_level)
            f.f_machine f.f_attempts f.f_detail)
        fs);
    if !failed || !campaign_failed then exit 1
  end
