(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's experiment index) and runs Bechamel
   micro-benchmarks of the compiler itself.

   Usage:
     bench/main.exe                 print all tables and figures
     bench/main.exe -t 4 -t 6       only Tables 4 and 6
     bench/main.exe --list          list available table ids
     bench/main.exe --bechamel      also run pass micro-benchmarks
     bench/main.exe --json          write BENCH_results.json (full sweep)

   Any output mismatch discovered while measuring makes the driver exit
   nonzero (see Harness.Measure.mismatches).                              *)

let available : (string * string * (Format.formatter -> unit)) list =
  [
    ("1", "Table 1: loop with exit condition in the middle", Harness.Tables.table1);
    ("2", "Table 2: if-then-else", Harness.Tables.table2);
    ("3", "Table 3: test set", Harness.Tables.table3);
    ("4", "Table 4: percent unconditional jumps", Harness.Tables.table4);
    ("5", "Table 5: static and dynamic instructions", Harness.Tables.table5);
    ("6", "Table 6: cache miss ratio and fetch cost", Harness.Tables.table6);
    ("bb", "Section 5.2: block statistics", Harness.Tables.block_stats);
    ("fig", "Figures 1 and 2: loop interference cases", Harness.Tables.figures);
    ("cap", "Ablation: bounded replication (paper section 6)", Harness.Tables.ablation_cap);
    ("heur", "Ablation: step-2 heuristic", Harness.Tables.ablation_heuristic);
    ("assoc", "Ablation: cache associativity (extension)", Harness.Tables.ablation_assoc);
    ("passes", "Ablation: cleanup passes (paper section 3.3)", Harness.Tables.ablation_passes);
  ]

(* --- Bechamel micro-benchmarks of the compiler and simulator --- *)

let bechamel_tests () =
  let open Bechamel in
  let quicksort = Option.get (Programs.Suite.find "quicksort") in
  let sieve = Option.get (Programs.Suite.find "sieve") in
  let parsed = Frontend.Parser.parse_program quicksort.source in
  let compiled = Frontend.Codegen.compile_program parsed in
  let jumps_input =
    Opt.Legalize.run Ir.Machine.risc
      (Option.get (Flow.Prog.find_func compiled "main"))
  in
  let prog_simple =
    Opt.Driver.optimize Opt.Driver.default_options Ir.Machine.risc compiled
  in
  let asm_simple = Sim.Asm.assemble Ir.Machine.risc prog_simple in
  let t name f = Test.make ~name (Staged.stage f) in
  [
    t "parse/quicksort" (fun () ->
        ignore (Frontend.Parser.parse_program quicksort.source));
    t "codegen/quicksort" (fun () ->
        ignore (Frontend.Codegen.compile_program parsed));
    t "jumps-pass/quicksort" (fun () ->
        ignore
          (Replication.Jumps.run Replication.Jumps.default_config jumps_input));
    t "pipeline-simple/quicksort" (fun () ->
        ignore
          (Opt.Driver.optimize Opt.Driver.default_options Ir.Machine.risc
             compiled));
    t "pipeline-jumps/quicksort" (fun () ->
        ignore
          (Opt.Driver.optimize
             { Opt.Driver.default_options with level = Opt.Driver.Jumps }
             Ir.Machine.risc compiled));
    t "interp/quicksort" (fun () ->
        ignore (Sim.Interp.run asm_simple prog_simple));
    t "pipeline-jumps/sieve-cisc" (fun () ->
        ignore
          (Opt.Driver.compile
             { Opt.Driver.default_options with level = Opt.Driver.Jumps }
             Ir.Machine.cisc sieve.source));
  ]

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second 0.5) () in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  print_endline "Bechamel micro-benchmarks (ns per run, OLS estimate):";
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let result = Benchmark.run cfg instances elt in
          let est = Analyze.one ols Instance.monotonic_clock result in
          let value =
            match Analyze.OLS.estimates est with
            | Some (v :: _) -> v
            | _ -> nan
          in
          Printf.printf "  %-32s %14.0f ns  (%.3f ms)\n%!" (Test.Elt.name elt)
            value (value /. 1_000_000.0))
        (Test.elements test))
    (bechamel_tests ())

(* --- machine-readable results: the full suite sweep as JSON --- *)

(* Every (benchmark, level, machine) measurement plus the telemetry counter
   totals of the sweep, in one JSON document.  The numbers come from the
   same Harness.Measure/Telemetry path the tables use. *)
let write_json path =
  let levels = [ Opt.Driver.Simple; Opt.Driver.Loops; Opt.Driver.Jumps ] in
  let machines = [ Ir.Machine.risc; Ir.Machine.cisc ] in
  let log = Telemetry.Log.make Telemetry.Log.Memory in
  let results =
    List.concat_map
      (fun machine ->
        List.concat_map
          (fun level -> Harness.Measure.run_suite ~log level machine)
          levels)
      machines
  in
  let counters =
    Telemetry.Counter.all log
    |> List.map (fun (name, value) ->
           Printf.sprintf "%s:%d" (Telemetry.Log.json_string name) value)
  in
  let oc = open_out path in
  Printf.fprintf oc "{\"results\":[%s],\"counters\":{%s}}\n"
    (String.concat "," (List.map Harness.Measure.to_json results))
    (String.concat "," counters);
  close_out oc;
  Printf.printf "wrote %s (%d measurements)\n" path (List.length results)

let () =
  let tables = ref [] in
  let list_only = ref false in
  let bech = ref false in
  let json = ref false in
  let spec =
    [
      ( "-t",
        Arg.String (fun s -> tables := s :: !tables),
        "ID  print only this table/figure (repeatable)" );
      ( "--tables",
        Arg.String (fun s -> tables := s :: !tables),
        "ID  same as -t" );
      ("--list", Arg.Set list_only, " list available ids");
      ("--bechamel", Arg.Set bech, " run pass micro-benchmarks");
      ("--json", Arg.Set json, " write BENCH_results.json (full suite sweep)");
    ]
  in
  Arg.parse spec
    (fun s -> tables := s :: !tables)
    "bench/main.exe [-t ID]... — regenerate the paper's tables";
  if !list_only then
    List.iter (fun (id, desc, _) -> Printf.printf "%-5s %s\n" id desc) available
  else begin
    let selected =
      if !tables = [] && not !json then available
      else
        List.filter_map
          (fun id ->
            match List.find_opt (fun (i, _, _) -> i = id) available with
            | Some entry -> Some entry
            | None ->
              Printf.eprintf "unknown table id %s (try --list)\n" id;
              None)
          (List.rev !tables)
    in
    let ppf = Format.std_formatter in
    List.iter
      (fun (_, _, print) ->
        print ppf;
        Format.pp_print_flush ppf ())
      selected;
    if !json then write_json "BENCH_results.json";
    if !bech then run_bechamel ();
    (* Timeouts and mismatches are distinct verdicts; either fails the
       sweep. *)
    let failed = ref false in
    (match Harness.Measure.timeouts () with
    | [] -> ()
    | hung ->
      failed := true;
      List.iter
        (fun (prog, level, machine) ->
          Printf.eprintf "TIMEOUT: %s at %s on %s\n" prog
            (Opt.Driver.level_name level)
            machine)
        hung);
    (match Harness.Measure.mismatches () with
    | [] -> ()
    | bad ->
      failed := true;
      List.iter
        (fun (prog, level, machine) ->
          Printf.eprintf "MISMATCH: %s at %s on %s\n" prog
            (Opt.Driver.level_name level)
            machine)
        bad);
    if !failed then exit 1
  end
